#include <gtest/gtest.h>

#include "sat/cnf.h"

namespace satfr::sat {
namespace {

TEST(CnfTest, NewVarsAllocateSequentially) {
  Cnf cnf;
  EXPECT_EQ(cnf.num_vars(), 0);
  EXPECT_EQ(cnf.NewVar(), 0);
  EXPECT_EQ(cnf.NewVar(), 1);
  EXPECT_EQ(cnf.NewVars(3), 2);
  EXPECT_EQ(cnf.num_vars(), 5);
}

TEST(CnfTest, EnsureVarsOnlyGrows) {
  Cnf cnf(4);
  cnf.EnsureVars(2);
  EXPECT_EQ(cnf.num_vars(), 4);
  cnf.EnsureVars(9);
  EXPECT_EQ(cnf.num_vars(), 9);
}

TEST(CnfTest, AddClauseAndCounts) {
  Cnf cnf(3);
  cnf.AddBinary(Lit::Pos(0), Lit::Neg(1));
  cnf.AddUnit(Lit::Pos(2));
  cnf.AddTernary(Lit::Pos(0), Lit::Pos(1), Lit::Pos(2));
  EXPECT_EQ(cnf.num_clauses(), 3u);
  EXPECT_EQ(cnf.num_literals(), 6u);
}

TEST(CnfTest, IsSatisfiedBy) {
  Cnf cnf(2);
  cnf.AddBinary(Lit::Pos(0), Lit::Pos(1));   // x0 | x1
  cnf.AddBinary(Lit::Neg(0), Lit::Neg(1));   // ~x0 | ~x1
  EXPECT_TRUE(cnf.IsSatisfiedBy({true, false}));
  EXPECT_TRUE(cnf.IsSatisfiedBy({false, true}));
  EXPECT_FALSE(cnf.IsSatisfiedBy({true, true}));
  EXPECT_FALSE(cnf.IsSatisfiedBy({false, false}));
}

TEST(CnfTest, EmptyClauseNeverSatisfied) {
  Cnf cnf(1);
  cnf.AddClause({});
  EXPECT_FALSE(cnf.IsSatisfiedBy({true}));
  EXPECT_FALSE(cnf.IsSatisfiedBy({false}));
}

TEST(CnfTest, NoClausesAlwaysSatisfied) {
  Cnf cnf(2);
  EXPECT_TRUE(cnf.IsSatisfiedBy({false, false}));
}

TEST(CnfTest, NormalizeRemovesTautologiesAndDuplicates) {
  Cnf cnf(2);
  cnf.AddBinary(Lit::Pos(0), Lit::Neg(0));  // tautology
  cnf.AddBinary(Lit::Pos(0), Lit::Pos(1));
  cnf.AddBinary(Lit::Pos(1), Lit::Pos(0));  // duplicate after sort
  cnf.AddClause({Lit::Pos(0), Lit::Pos(0), Lit::Pos(1)});  // dup literal
  const std::size_t removed = cnf.NormalizeClauses();
  EXPECT_EQ(removed, 3u);
  EXPECT_EQ(cnf.num_clauses(), 1u);
  EXPECT_EQ(cnf.clauses()[0].size(), 2u);
}

TEST(CnfTest, AppendShiftsVariables) {
  Cnf a(2);
  a.AddBinary(Lit::Pos(0), Lit::Neg(1));
  Cnf b(2);
  b.AddUnit(Lit::Pos(1));
  a.Append(b, 2);
  EXPECT_EQ(a.num_vars(), 4);
  ASSERT_EQ(a.num_clauses(), 2u);
  EXPECT_EQ(a.clauses()[1][0], Lit::Pos(3));
}

TEST(CnfTest, ClauseLengthHistogram) {
  Cnf cnf(4);
  EXPECT_TRUE(cnf.ClauseLengthHistogram().empty());
  cnf.AddUnit(Lit::Pos(0));
  cnf.AddBinary(Lit::Pos(0), Lit::Neg(1));
  cnf.AddBinary(Lit::Pos(2), Lit::Pos(3));
  cnf.AddTernary(Lit::Pos(0), Lit::Pos(1), Lit::Pos(2));
  cnf.AddClause({Lit::Pos(0), Lit::Pos(1), Lit::Pos(2), Lit::Pos(3)});
  const std::vector<std::size_t> histogram = cnf.ClauseLengthHistogram();
  ASSERT_EQ(histogram.size(), 5u);
  EXPECT_EQ(histogram[0], 0u);
  EXPECT_EQ(histogram[1], 1u);
  EXPECT_EQ(histogram[2], 2u);
  EXPECT_EQ(histogram[3], 1u);
  EXPECT_EQ(histogram[4], 1u);
  EXPECT_EQ(cnf.num_unit(), 1u);
  EXPECT_EQ(cnf.num_binary(), 2u);
  EXPECT_EQ(cnf.num_ternary(), 1u);
  EXPECT_EQ(cnf.NumClausesOfSize(4), 1u);
  EXPECT_EQ(cnf.NumClausesOfSize(9), 0u);
}

TEST(CnfTest, ToStringHasHeaderAndClauses) {
  Cnf cnf(2);
  cnf.AddBinary(Lit::Pos(0), Lit::Neg(1));
  const std::string text = cnf.ToString();
  EXPECT_NE(text.find("p cnf 2 1"), std::string::npos);
  EXPECT_NE(text.find("x0 ~x1"), std::string::npos);
}

}  // namespace
}  // namespace satfr::sat
