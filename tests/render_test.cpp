#include <gtest/gtest.h>

#include "fpga/render.h"

namespace satfr::fpga {
namespace {

TEST(RenderTest, OneByOneGrid) {
  const Arch arch(1);
  std::vector<int> values(static_cast<std::size_t>(arch.num_segments()), 0);
  values[static_cast<std::size_t>(arch.HorizontalSegment(0, 1))] = 3;
  values[static_cast<std::size_t>(arch.VerticalSegment(0, 0))] = 1;
  const std::string text = RenderSegmentValues(arch, values);
  EXPECT_EQ(text,
            "+-3-+\n"
            "1[ ].\n"
            "+-.-+\n");
}

TEST(RenderTest, GlyphSaturation) {
  const Arch arch(1);
  std::vector<int> values(static_cast<std::size_t>(arch.num_segments()), 12);
  const std::string text = RenderSegmentValues(arch, values);
  EXPECT_NE(text.find('*'), std::string::npos);
  EXPECT_EQ(text.find('.'), std::string::npos);
}

TEST(RenderTest, DimensionsScaleWithGrid) {
  const Arch arch(3);
  const std::vector<int> values(
      static_cast<std::size_t>(arch.num_segments()), 0);
  const std::string text = RenderSegmentValues(arch, values);
  // (N+1) switch rows + N block rows = 7 lines.
  int lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 7);
}

TEST(RenderTest, EveryValueAppearsOnce) {
  const Arch arch(2);
  std::vector<int> values(static_cast<std::size_t>(arch.num_segments()), 0);
  for (std::size_t s = 0; s < values.size(); ++s) {
    values[s] = 5;
  }
  const std::string text = RenderSegmentValues(arch, values);
  int fives = 0;
  for (const char c : text) {
    if (c == '5') ++fives;
  }
  EXPECT_EQ(fives, arch.num_segments());
}

}  // namespace
}  // namespace satfr::fpga
