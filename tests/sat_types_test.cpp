#include <gtest/gtest.h>

#include "sat/types.h"

namespace satfr::sat {
namespace {

TEST(LitTest, MakeAndAccessors) {
  const Lit p = Lit::Pos(3);
  EXPECT_EQ(p.var(), 3);
  EXPECT_FALSE(p.negated());
  EXPECT_TRUE(p.IsValid());

  const Lit n = Lit::Neg(3);
  EXPECT_EQ(n.var(), 3);
  EXPECT_TRUE(n.negated());
  EXPECT_NE(p, n);
}

TEST(LitTest, NegationIsInvolution) {
  for (Var v = 0; v < 10; ++v) {
    const Lit p = Lit::Pos(v);
    EXPECT_EQ(~p, Lit::Neg(v));
    EXPECT_EQ(~~p, p);
  }
}

TEST(LitTest, CodePacksVarAndSign) {
  EXPECT_EQ(Lit::Pos(0).code(), 0);
  EXPECT_EQ(Lit::Neg(0).code(), 1);
  EXPECT_EQ(Lit::Pos(5).code(), 10);
  EXPECT_EQ(Lit::Neg(5).code(), 11);
}

TEST(LitTest, DefaultIsInvalid) {
  const Lit undef;
  EXPECT_FALSE(undef.IsValid());
  EXPECT_FALSE(kUndefLit.IsValid());
}

TEST(LitTest, DimacsRoundTrip) {
  for (int d : {1, -1, 7, -7, 100, -100}) {
    const Lit l = Lit::FromDimacs(d);
    EXPECT_EQ(l.ToDimacs(), d);
  }
  EXPECT_EQ(Lit::Pos(0).ToDimacs(), 1);
  EXPECT_EQ(Lit::Neg(0).ToDimacs(), -1);
}

TEST(LitTest, Ordering) {
  EXPECT_LT(Lit::Pos(0), Lit::Neg(0));
  EXPECT_LT(Lit::Neg(0), Lit::Pos(1));
}

TEST(LitTest, ToString) {
  EXPECT_EQ(Lit::Pos(2).ToString(), "x2");
  EXPECT_EQ(Lit::Neg(2).ToString(), "~x2");
}

TEST(LBoolTest, NegateFixesUndef) {
  EXPECT_EQ(Negate(LBool::kTrue), LBool::kFalse);
  EXPECT_EQ(Negate(LBool::kFalse), LBool::kTrue);
  EXPECT_EQ(Negate(LBool::kUndef), LBool::kUndef);
}

TEST(LBoolTest, LitValueHonorsSign) {
  EXPECT_EQ(LitValue(Lit::Pos(0), LBool::kTrue), LBool::kTrue);
  EXPECT_EQ(LitValue(Lit::Neg(0), LBool::kTrue), LBool::kFalse);
  EXPECT_EQ(LitValue(Lit::Neg(0), LBool::kFalse), LBool::kTrue);
  EXPECT_EQ(LitValue(Lit::Neg(0), LBool::kUndef), LBool::kUndef);
}

}  // namespace
}  // namespace satfr::sat
