// Structural tests of the ITE-tree encodings against §3 and Figure 1.
#include <gtest/gtest.h>

#include <cmath>

#include "encode/ite_tree.h"

namespace satfr::encode {
namespace {

using sat::Lit;

Cube LinearCube(int value, int count) {
  // Fig 1.a pattern: v_j selected by ~i0 & ... & ~i_{j-1} & i_j
  // (last value omits its own positive literal).
  Cube cube;
  for (int i = 0; i < value; ++i) cube.push_back(Lit::Neg(i));
  if (value < count - 1) cube.push_back(Lit::Pos(value));
  return cube;
}

TEST(IteLinearTest, Figure1aPatterns) {
  const int k = 13;
  const LevelEncoding enc = IteLinearEncoder().Encode(k);
  EXPECT_EQ(enc.num_vars, 12);
  EXPECT_TRUE(enc.exactly_one);
  EXPECT_TRUE(enc.structural.empty());
  ASSERT_EQ(enc.cubes.size(), 13u);
  // v0 <- i0 ; v1 <- ~i0 & i1 ; ... ; v12 <- ~i0 & ... & ~i11.
  for (int v = 0; v < k; ++v) {
    EXPECT_EQ(enc.cubes[static_cast<std::size_t>(v)], LinearCube(v, k))
        << "value " << v;
  }
}

TEST(IteLinearTest, SingleValueNeedsNoVars) {
  const LevelEncoding enc = IteLinearEncoder().Encode(1);
  EXPECT_EQ(enc.num_vars, 0);
  ASSERT_EQ(enc.cubes.size(), 1u);
  EXPECT_TRUE(enc.cubes[0].empty());
}

TEST(IteLogTest, DepthClaimFromSection3) {
  // "Every path goes through ceil(log2 k) or ceil(log2 k) - 1 ITEs."
  for (int k = 1; k <= 64; ++k) {
    const auto tree = BuildBalancedIteTree(k);
    const int expected = static_cast<int>(std::ceil(std::log2(k)));
    EXPECT_EQ(TreeMaxDepth(*tree), expected) << "k=" << k;
    if (k > 1) {
      EXPECT_GE(TreeMinDepth(*tree), expected - 1) << "k=" << k;
    }
  }
}

TEST(IteLogTest, VarCountIsCeilLog2) {
  EXPECT_EQ(IteLogEncoder().Encode(13).num_vars, 4);
  EXPECT_EQ(IteLogEncoder().Encode(16).num_vars, 4);
  EXPECT_EQ(IteLogEncoder().Encode(17).num_vars, 5);
  EXPECT_EQ(IteLogEncoder().Encode(2).num_vars, 1);
  EXPECT_EQ(IteLogEncoder().Encode(1).num_vars, 0);
}

TEST(IteLogTest, SharesVariablesByDepth) {
  // With 13 leaves only 4 distinct variables may appear.
  const auto tree = BuildBalancedIteTree(13);
  EXPECT_EQ(TreeNumVars(*tree), 4);
}

TEST(IteLogTest, NoStructuralClauses) {
  const LevelEncoding enc = IteLogEncoder().Encode(13);
  EXPECT_TRUE(enc.structural.empty());
  EXPECT_TRUE(enc.exactly_one);
}

// The defining ITE-tree property: every assignment to the indexing Booleans
// selects exactly one leaf. Checked exhaustively.
class IteExactlyOneTest : public ::testing::TestWithParam<int> {};

TEST_P(IteExactlyOneTest, LinearSelectsExactlyOneLeaf) {
  const int k = GetParam();
  const LevelEncoding enc = IteLinearEncoder().Encode(k);
  ASSERT_LE(enc.num_vars, 16);
  for (int bits = 0; bits < (1 << enc.num_vars); ++bits) {
    std::vector<bool> assignment(static_cast<std::size_t>(enc.num_vars));
    for (int i = 0; i < enc.num_vars; ++i) {
      assignment[static_cast<std::size_t>(i)] = ((bits >> i) & 1) != 0;
    }
    int selected = 0;
    for (const Cube& cube : enc.cubes) {
      if (CubeSatisfied(cube, 0, assignment)) ++selected;
    }
    EXPECT_EQ(selected, 1) << "k=" << k << " bits=" << bits;
  }
}

TEST_P(IteExactlyOneTest, BalancedSelectsExactlyOneLeaf) {
  const int k = GetParam();
  const LevelEncoding enc = IteLogEncoder().Encode(k);
  for (int bits = 0; bits < (1 << enc.num_vars); ++bits) {
    std::vector<bool> assignment(static_cast<std::size_t>(enc.num_vars));
    for (int i = 0; i < enc.num_vars; ++i) {
      assignment[static_cast<std::size_t>(i)] = ((bits >> i) & 1) != 0;
    }
    int selected = 0;
    for (const Cube& cube : enc.cubes) {
      if (CubeSatisfied(cube, 0, assignment)) ++selected;
    }
    EXPECT_EQ(selected, 1) << "k=" << k << " bits=" << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(DomainSizes, IteExactlyOneTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 13,
                                           16, 17));

TEST(IteReducedTest, LinearReducedUsesPrefixVars) {
  const IteLinearEncoder enc;
  const auto reduced = enc.ReducedCubes(7, 4);
  ASSERT_EQ(reduced.size(), 4u);
  // A 4-leaf chain uses variables 0..2 only.
  for (const Cube& cube : reduced) {
    for (const Lit l : cube) {
      EXPECT_LT(l.var(), 3);
    }
  }
  EXPECT_FALSE(enc.ReducedNeedsRestriction());
}

TEST(IteReducedTest, BalancedReducedUsesPrefixVars) {
  const IteLogEncoder enc;
  const auto reduced = enc.ReducedCubes(8, 3);  // full tree: 3 vars
  ASSERT_EQ(reduced.size(), 3u);
  for (const Cube& cube : reduced) {
    for (const Lit l : cube) {
      EXPECT_LT(l.var(), 2);  // ceil(log2 3) = 2
    }
  }
  EXPECT_FALSE(enc.ReducedNeedsRestriction());
}

TEST(IteTreeTest, RenderMentionsAllLeavesAndVars) {
  const auto tree = BuildLinearIteTree(4);
  const std::string text = RenderIteTree(*tree);
  for (const char* token : {"v0", "v1", "v2", "v3", "i0", "i1", "i2"}) {
    EXPECT_NE(text.find(token), std::string::npos) << token;
  }
}

TEST(IteTreeTest, LinearTreeDepths) {
  const auto tree = BuildLinearIteTree(13);
  EXPECT_EQ(TreeMaxDepth(*tree), 12);
  EXPECT_EQ(TreeMinDepth(*tree), 1);
  EXPECT_EQ(TreeNumVars(*tree), 12);
}

}  // namespace
}  // namespace satfr::encode
