#include <gtest/gtest.h>

#include "flow/conflict_graph.h"

namespace satfr::flow {
namespace {

using fpga::Arch;

route::GlobalRouting MakeRouting(
    std::vector<route::TwoPinNet> nets,
    std::vector<std::vector<fpga::SegmentIndex>> routes) {
  route::GlobalRouting routing;
  routing.two_pin_nets = std::move(nets);
  routing.routes = std::move(routes);
  return routing;
}

TEST(ConflictGraphTest, SharedSegmentDifferentParentsConflict) {
  const Arch arch(3);
  const auto seg = arch.HorizontalSegment(0, 0);
  const auto routing = MakeRouting({{0, 0, 1}, {1, 2, 3}}, {{seg}, {seg}});
  const graph::Graph g = BuildConflictGraph(arch, routing);
  EXPECT_EQ(g.num_vertices(), 2);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(ConflictGraphTest, SameParentNeverConflicts) {
  const Arch arch(3);
  const auto seg = arch.HorizontalSegment(1, 1);
  const auto routing = MakeRouting({{7, 0, 1}, {7, 0, 2}}, {{seg}, {seg}});
  const graph::Graph g = BuildConflictGraph(arch, routing);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(ConflictGraphTest, DisjointRoutesNoConflict) {
  const Arch arch(3);
  const auto routing =
      MakeRouting({{0, 0, 1}, {1, 2, 3}},
                  {{arch.HorizontalSegment(0, 0)},
                   {arch.HorizontalSegment(0, 1)}});
  const graph::Graph g = BuildConflictGraph(arch, routing);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(ConflictGraphTest, MultipleSharedSegmentsSingleEdge) {
  // §2: exclusivity is imposed once per pair even when routes share many
  // connection blocks.
  const Arch arch(4);
  const std::vector<fpga::SegmentIndex> shared = {
      arch.HorizontalSegment(0, 0), arch.HorizontalSegment(1, 0),
      arch.HorizontalSegment(2, 0)};
  const auto routing = MakeRouting({{0, 0, 1}, {1, 2, 3}}, {shared, shared});
  const graph::Graph g = BuildConflictGraph(arch, routing);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(ConflictGraphTest, ThreeWaySharingMakesTriangle) {
  const Arch arch(3);
  const auto seg = arch.VerticalSegment(1, 1);
  const auto routing = MakeRouting({{0, 0, 1}, {1, 2, 3}, {2, 4, 5}},
                                   {{seg}, {seg}, {seg}});
  const graph::Graph g = BuildConflictGraph(arch, routing);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(ConflictGraphTest, EmptyRouting) {
  const Arch arch(2);
  const graph::Graph g = BuildConflictGraph(arch, route::GlobalRouting{});
  EXPECT_EQ(g.num_vertices(), 0);
}

}  // namespace
}  // namespace satfr::flow
