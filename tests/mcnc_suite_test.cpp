#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/mcnc_suite.h"

namespace satfr::netlist {
namespace {

TEST(McncSuiteTest, Table2NamesMatchPaperOrder) {
  const auto& names = Table2BenchmarkNames();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names[0], "alu2");
  EXPECT_EQ(names[1], "too_large");
  EXPECT_EQ(names[2], "alu4");
  EXPECT_EQ(names[3], "C880");
  EXPECT_EQ(names[4], "apex7");
  EXPECT_EQ(names[5], "C1355");
  EXPECT_EQ(names[6], "vda");
  EXPECT_EQ(names[7], "k2");
}

TEST(McncSuiteTest, AllNamesIncludeTable2AndExtras) {
  const auto& all = AllBenchmarkNames();
  for (const std::string& name : Table2BenchmarkNames()) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end()) << name;
  }
  EXPECT_NE(std::find(all.begin(), all.end(), "tiny"), all.end());
}

TEST(McncSuiteTest, ParamsLookup) {
  const McncParams params = GetMcncParams("alu2");
  EXPECT_EQ(params.name, "alu2");
  EXPECT_GT(params.grid_size, 0);
  EXPECT_GT(params.num_nets, 0);
}

TEST(McncSuiteTest, GenerationIsDeterministic) {
  const McncBenchmark a = GenerateMcncBenchmark("tiny");
  const McncBenchmark b = GenerateMcncBenchmark("tiny");
  ASSERT_EQ(a.netlist.num_nets(), b.netlist.num_nets());
  ASSERT_EQ(a.netlist.num_blocks(), b.netlist.num_blocks());
  for (NetId n = 0; n < a.netlist.num_nets(); ++n) {
    EXPECT_EQ(a.netlist.net(n).source, b.netlist.net(n).source);
    EXPECT_EQ(a.netlist.net(n).sinks, b.netlist.net(n).sinks);
  }
  for (BlockId blk = 0; blk < a.netlist.num_blocks(); ++blk) {
    EXPECT_EQ(a.placement.LocationOf(blk).x, b.placement.LocationOf(blk).x);
    EXPECT_EQ(a.placement.LocationOf(blk).y, b.placement.LocationOf(blk).y);
  }
}

TEST(McncSuiteTest, DifferentBenchmarksDiffer) {
  const McncBenchmark a = GenerateMcncBenchmark("9symml");
  const McncBenchmark b = GenerateMcncBenchmark("term1");
  EXPECT_TRUE(a.netlist.num_nets() != b.netlist.num_nets() ||
              a.netlist.num_blocks() != b.netlist.num_blocks() ||
              a.netlist.net(0).source != b.netlist.net(0).source);
}

TEST(McncSuiteTest, EveryBenchmarkValidatesAndIsPlaced) {
  for (const std::string& name : AllBenchmarkNames()) {
    const McncBenchmark bench = GenerateMcncBenchmark(name);
    std::string error;
    EXPECT_TRUE(bench.netlist.Validate(&error)) << name << ": " << error;
    EXPECT_TRUE(bench.placement.CoversNetlist(bench.netlist)) << name;
    EXPECT_EQ(bench.netlist.num_nets(), bench.params.num_nets) << name;
    EXPECT_LE(bench.netlist.MaxFanout(), bench.params.max_fanout) << name;
  }
}

TEST(McncSuiteTest, HardnessKnobsGrowAlongTable2Order) {
  // The synthetic suite must preserve the paper's relative scale ordering.
  const auto& names = Table2BenchmarkNames();
  for (std::size_t i = 0; i + 1 < names.size(); ++i) {
    const McncParams a = GetMcncParams(names[i]);
    const McncParams b = GetMcncParams(names[i + 1]);
    EXPECT_LE(a.grid_size, b.grid_size) << names[i];
    EXPECT_LE(a.num_nets, b.num_nets) << names[i];
  }
}

}  // namespace
}  // namespace satfr::netlist
