#include <gtest/gtest.h>

#include "graph/coloring_bounds.h"
#include "test_util.h"

namespace satfr::graph {
namespace {

Graph Cycle(int n) {
  Graph g(n);
  for (VertexId v = 0; v < n; ++v) g.AddEdge(v, (v + 1) % n);
  return g;
}

Graph Complete(int n) {
  Graph g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) g.AddEdge(u, v);
  }
  return g;
}

Graph Petersen() {
  Graph g(10);
  for (VertexId v = 0; v < 5; ++v) {
    g.AddEdge(v, (v + 1) % 5);      // outer cycle
    g.AddEdge(v + 5, (v + 2) % 5 + 5);  // inner pentagram
    g.AddEdge(v, v + 5);            // spokes
  }
  return g;
}

TEST(DsaturTest, ProducesProperColorings) {
  Rng rng(808);
  for (int i = 0; i < 30; ++i) {
    const Graph g = testutil::RandomGraph(rng, 20, 0.3);
    const auto colors = DsaturColoring(g);
    EXPECT_TRUE(g.IsProperColoring(colors));
  }
}

TEST(DsaturTest, BipartiteUsesTwoColors) {
  // Even cycles are bipartite; DSATUR is exact on them.
  for (int n : {4, 6, 8, 10}) {
    EXPECT_EQ(NumColorsUsed(DsaturColoring(Cycle(n))), 2) << "C" << n;
  }
}

TEST(DsaturTest, EdgelessUsesOneColor) {
  const Graph g(5);
  EXPECT_EQ(NumColorsUsed(DsaturColoring(g)), 1);
}

TEST(DsaturTest, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(NumColorsUsed(DsaturColoring(g)), 0);
}

TEST(CliqueBoundTest, FindsCompleteGraphs) {
  for (int n : {2, 3, 5, 7}) {
    EXPECT_EQ(GreedyCliqueLowerBound(Complete(n)), n);
  }
}

TEST(CliqueBoundTest, TriangleInsideSparseGraph) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);  // triangle 0-1-2
  g.AddEdge(3, 4);
  EXPECT_GE(GreedyCliqueLowerBound(g), 3);
}

TEST(ExactColoringTest, KnownChromaticNumbers) {
  EXPECT_EQ(ChromaticNumberExact(Complete(4)), 4);
  EXPECT_EQ(ChromaticNumberExact(Cycle(5)), 3);   // odd cycle
  EXPECT_EQ(ChromaticNumberExact(Cycle(6)), 2);   // even cycle
  EXPECT_EQ(ChromaticNumberExact(Petersen()), 3);
  EXPECT_EQ(ChromaticNumberExact(Graph(4)), 1);   // edgeless
  EXPECT_EQ(ChromaticNumberExact(Graph()), 0);    // empty
}

TEST(ExactColoringTest, IsKColorableMonotone) {
  const Graph g = Petersen();
  EXPECT_FALSE(IsKColorableExact(g, 2));
  EXPECT_TRUE(IsKColorableExact(g, 3));
  EXPECT_TRUE(IsKColorableExact(g, 4));
  EXPECT_FALSE(IsKColorableExact(g, 0));
}

TEST(BoundsTest, SandwichProperty) {
  Rng rng(909);
  for (int i = 0; i < 20; ++i) {
    const Graph g = testutil::RandomGraph(rng, 12, 0.4);
    const int lower = GreedyCliqueLowerBound(g);
    const int exact = ChromaticNumberExact(g);
    const int upper = NumColorsUsed(DsaturColoring(g));
    EXPECT_LE(lower, exact);
    EXPECT_LE(exact, upper);
  }
}

}  // namespace
}  // namespace satfr::graph
