#include <gtest/gtest.h>

#include <memory>

#include "flow/conflict_graph.h"
#include "flow/incremental_min_width.h"
#include "flow/min_width.h"
#include "flow/track_checker.h"
#include "graph/coloring_bounds.h"
#include "netlist/mcnc_suite.h"
#include "route/global_router.h"
#include "test_util.h"

namespace satfr::flow {
namespace {

TEST(SolverAssumptionsTest, BasicSatUnderAssumptions) {
  sat::Solver solver;
  const sat::Var a = solver.NewVar();
  const sat::Var b = solver.NewVar();
  ASSERT_TRUE(solver.AddClause({sat::Lit::Pos(a), sat::Lit::Pos(b)}));
  EXPECT_EQ(solver.SolveWithAssumptions({sat::Lit::Neg(a)}),
            sat::SolveResult::kSat);
  EXPECT_TRUE(solver.ModelValue(sat::Lit::Pos(b)));
}

TEST(SolverAssumptionsTest, UnsatUnderAssumptionsIsRetractable) {
  sat::Solver solver;
  const sat::Var a = solver.NewVar();
  const sat::Var b = solver.NewVar();
  ASSERT_TRUE(solver.AddClause({sat::Lit::Pos(a), sat::Lit::Pos(b)}));
  // Assuming both false contradicts the clause...
  EXPECT_EQ(solver.SolveWithAssumptions(
                {sat::Lit::Neg(a), sat::Lit::Neg(b)}),
            sat::SolveResult::kUnsat);
  // ...but the solver stays usable and the formula stays satisfiable.
  EXPECT_TRUE(solver.okay());
  EXPECT_EQ(solver.Solve(), sat::SolveResult::kSat);
}

TEST(SolverAssumptionsTest, ContradictoryAssumptionPair) {
  sat::Solver solver;
  const sat::Var a = solver.NewVar();
  solver.NewVar();
  EXPECT_EQ(solver.SolveWithAssumptions(
                {sat::Lit::Pos(a), sat::Lit::Neg(a)}),
            sat::SolveResult::kUnsat);
  EXPECT_TRUE(solver.okay());
}

TEST(SolverAssumptionsTest, LearnsAcrossQueries) {
  // Pigeonhole with a relaxation variable r: UNSAT under r, SAT under ~r.
  const sat::Cnf php = testutil::PigeonholeCnf(5);
  sat::Solver solver;
  ASSERT_TRUE(solver.AddCnf(php));
  const sat::Var r = solver.NewVar();
  // r forces pigeon 0 out of every hole (strengthens PHP; still UNSAT).
  for (int h = 0; h < 5; ++h) {
    ASSERT_TRUE(solver.AddClause({sat::Lit::Neg(r), sat::Lit::Neg(h)}));
  }
  EXPECT_EQ(solver.SolveWithAssumptions({sat::Lit::Pos(r)}),
            sat::SolveResult::kUnsat);
  EXPECT_TRUE(solver.okay());
  // PHP itself is UNSAT regardless of r.
  EXPECT_EQ(solver.Solve(), sat::SolveResult::kUnsat);
}

TEST(SolverAssumptionsTest, ManySequentialQueries) {
  // Draw instances until one survives top-level propagation.
  Rng rng(2718);
  sat::Cnf cnf;
  auto solver = std::make_unique<sat::Solver>();
  do {
    cnf = testutil::RandomCnf(rng, 20, 60, 4);
    solver = std::make_unique<sat::Solver>();
  } while (!solver->AddCnf(cnf));
  for (int i = 0; i < 20; ++i) {
    const sat::Var v =
        static_cast<sat::Var>(rng.NextBelow(20));
    const sat::Lit assumption = sat::Lit::Make(v, rng.NextBool(0.5));
    const sat::SolveResult result =
        solver->SolveWithAssumptions({assumption});
    if (!solver->okay()) break;  // formula itself refuted; nothing to check
    if (result == sat::SolveResult::kSat) {
      EXPECT_TRUE(cnf.IsSatisfiedBy(solver->model()));
      EXPECT_TRUE(solver->ModelValue(assumption));
    }
  }
}

TEST(IncrementalMinWidthTest, MatchesExactChromaticNumber) {
  Rng rng(31415);
  for (int i = 0; i < 10; ++i) {
    const graph::Graph g = testutil::RandomGraph(rng, 12, 0.35);
    const int chi = graph::ChromaticNumberExact(g);
    const IncrementalMinWidthResult result =
        FindMinimumWidthIncremental(g, 1);
    EXPECT_EQ(result.min_width, chi) << "iteration " << i;
    EXPECT_TRUE(result.proven_optimal);
    EXPECT_TRUE(g.IsProperColoring(result.tracks));
    for (const int track : result.tracks) {
      EXPECT_LT(track, chi);
    }
  }
}

TEST(IncrementalMinWidthTest, AgreesWithScratchSearchOnBenchmarks) {
  for (const std::string name : {"tiny", "9symml", "term1"}) {
    const netlist::McncBenchmark bench =
        netlist::GenerateMcncBenchmark(name);
    const fpga::Arch arch(bench.params.grid_size);
    const fpga::DeviceGraph device(arch);
    const route::GlobalRouting routing =
        route::RouteGlobally(device, bench.netlist, bench.placement);
    const graph::Graph conflict = BuildConflictGraph(arch, routing);
    const int peak = route::PeakCongestion(arch, routing);

    const MinWidthResult scratch = FindMinimumWidthOnGraph(conflict, peak, {});
    const IncrementalMinWidthResult incremental =
        FindMinimumWidthIncremental(conflict, peak);
    EXPECT_EQ(incremental.min_width, scratch.min_width) << name;
    std::string error;
    EXPECT_TRUE(ValidateTrackAssignment(arch, routing, incremental.tracks,
                                        incremental.min_width, &error))
        << name << ": " << error;
  }
}

TEST(IncrementalMinWidthTest, WorksAcrossEncodingsAndHeuristics) {
  Rng rng(27182);
  const graph::Graph g = testutil::RandomGraph(rng, 14, 0.4);
  const int chi = graph::ChromaticNumberExact(g);
  for (const char* encoding :
       {"muldirect", "log", "ITE-linear-2+muldirect", "direct-3+direct"}) {
    for (const symmetry::Heuristic h :
         {symmetry::Heuristic::kNone, symmetry::Heuristic::kB1,
          symmetry::Heuristic::kS1}) {
      IncrementalMinWidthOptions options;
      options.encoding = encode::GetEncoding(encoding);
      options.heuristic = h;
      const IncrementalMinWidthResult result =
          FindMinimumWidthIncremental(g, 1, options);
      EXPECT_EQ(result.min_width, chi)
          << encoding << "/" << symmetry::ToString(h);
    }
  }
}

TEST(IncrementalMinWidthTest, CubeSweepMatchesExactChromaticNumber) {
  Rng rng(16180);
  for (int i = 0; i < 6; ++i) {
    const graph::Graph g = testutil::RandomGraph(rng, 12, 0.35);
    const int chi = graph::ChromaticNumberExact(g);
    IncrementalMinWidthOptions options;
    options.cube_workers = 2;
    const IncrementalMinWidthResult result =
        FindMinimumWidthIncremental(g, 1, options);
    EXPECT_EQ(result.min_width, chi) << "iteration " << i;
    EXPECT_TRUE(result.proven_optimal);
    EXPECT_TRUE(result.model_validated);
    EXPECT_TRUE(result.error.empty()) << result.error;
    EXPECT_TRUE(g.IsProperColoring(result.tracks));
    for (const int track : result.tracks) {
      EXPECT_LT(track, chi);
    }
  }
}

TEST(IncrementalMinWidthTest, CubeSweepAgreesWithMonolithicOnBenchmarks) {
  for (const std::string name : {"tiny", "9symml", "term1"}) {
    const netlist::McncBenchmark bench =
        netlist::GenerateMcncBenchmark(name);
    const fpga::Arch arch(bench.params.grid_size);
    const fpga::DeviceGraph device(arch);
    const route::GlobalRouting routing =
        route::RouteGlobally(device, bench.netlist, bench.placement);
    const graph::Graph conflict = BuildConflictGraph(arch, routing);
    const int peak = route::PeakCongestion(arch, routing);

    const IncrementalMinWidthResult monolithic =
        FindMinimumWidthIncremental(conflict, peak);
    IncrementalMinWidthOptions options;
    options.cube_workers = 2;
    const IncrementalMinWidthResult cubed =
        FindMinimumWidthIncremental(conflict, peak, options);
    EXPECT_EQ(cubed.min_width, monolithic.min_width) << name;
    EXPECT_TRUE(cubed.error.empty()) << name << ": " << cubed.error;
    std::string error;
    EXPECT_TRUE(ValidateTrackAssignment(arch, routing, cubed.tracks,
                                        cubed.min_width, &error))
        << name << ": " << error;
  }
}

TEST(IncrementalMinWidthTest, CubeSweepDeterministicSingleWorker) {
  Rng rng(141421);
  const graph::Graph g = testutil::RandomGraph(rng, 14, 0.4);
  IncrementalMinWidthOptions options;
  options.cube_workers = 1;
  options.cube_deterministic = true;
  const IncrementalMinWidthResult first =
      FindMinimumWidthIncremental(g, 1, options);
  const IncrementalMinWidthResult second =
      FindMinimumWidthIncremental(g, 1, options);
  EXPECT_EQ(first.min_width, second.min_width);
  EXPECT_EQ(first.tracks, second.tracks);
  EXPECT_EQ(first.widths_tested, second.widths_tested);
  EXPECT_EQ(first.cubes_solved, second.cubes_solved);
  EXPECT_EQ(first.cubes_stolen, 0u);
}

TEST(IncrementalMinWidthTest, TimeoutReportsNoWidth) {
  Rng rng(999);
  const graph::Graph g = testutil::RandomGraph(rng, 60, 0.5);
  IncrementalMinWidthOptions options;
  options.timeout_seconds = 1e-6;
  const IncrementalMinWidthResult result =
      FindMinimumWidthIncremental(g, 3, options);
  EXPECT_EQ(result.min_width, -1);
}

TEST(IncrementalMinWidthTest, EdgelessGraph) {
  const graph::Graph g(4);
  const IncrementalMinWidthResult result = FindMinimumWidthIncremental(g, 1);
  EXPECT_EQ(result.min_width, 1);
}

}  // namespace
}  // namespace satfr::flow
