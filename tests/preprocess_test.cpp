#include <gtest/gtest.h>

#include "encode/csp_to_cnf.h"
#include "encode/registry.h"
#include "sat/brute_force.h"
#include "sat/preprocess.h"
#include "sat/solver.h"
#include "symmetry/symmetry.h"
#include "test_util.h"

namespace satfr::sat {
namespace {

TEST(PreprocessTest, UnitPropagationForces) {
  Cnf cnf(3);
  cnf.AddUnit(Lit::Pos(0));
  cnf.AddBinary(Lit::Neg(0), Lit::Pos(1));   // forces x1
  cnf.AddBinary(Lit::Neg(1), Lit::Neg(2));   // forces ~x2
  const PreprocessResult result = Preprocess(cnf);
  EXPECT_FALSE(result.contradiction);
  EXPECT_EQ(result.forced[0], LBool::kTrue);
  EXPECT_EQ(result.forced[1], LBool::kTrue);
  EXPECT_EQ(result.forced[2], LBool::kFalse);
  EXPECT_EQ(result.stats.forced_units, 3u);
}

TEST(PreprocessTest, DetectsContradiction) {
  Cnf cnf(2);
  cnf.AddUnit(Lit::Pos(0));
  cnf.AddBinary(Lit::Neg(0), Lit::Pos(1));
  cnf.AddBinary(Lit::Neg(0), Lit::Neg(1));
  const PreprocessResult result = Preprocess(cnf);
  EXPECT_TRUE(result.contradiction);
  EXPECT_FALSE(SolveByDpll(result.simplified).has_value());
}

TEST(PreprocessTest, SubsumptionRemovesSupersets) {
  Cnf cnf(3);
  cnf.AddBinary(Lit::Pos(0), Lit::Pos(1));
  cnf.AddTernary(Lit::Pos(0), Lit::Pos(1), Lit::Pos(2));  // subsumed
  const PreprocessResult result = Preprocess(cnf);
  EXPECT_EQ(result.stats.removed_subsumed, 1u);
  EXPECT_EQ(result.simplified.num_clauses(), 1u);
}

TEST(PreprocessTest, DuplicateClausesCollapse) {
  Cnf cnf(2);
  cnf.AddBinary(Lit::Pos(0), Lit::Pos(1));
  cnf.AddBinary(Lit::Pos(1), Lit::Pos(0));  // same clause, reordered
  const PreprocessResult result = Preprocess(cnf);
  EXPECT_EQ(result.simplified.num_clauses(), 1u);
}

TEST(PreprocessTest, SelfSubsumingResolutionStrengthens) {
  // (a | b) and (a | ~b | c): resolving on b strengthens the second
  // clause to (a | c).
  Cnf cnf(3);
  cnf.AddBinary(Lit::Pos(0), Lit::Pos(1));
  cnf.AddTernary(Lit::Pos(0), Lit::Neg(1), Lit::Pos(2));
  const PreprocessResult result = Preprocess(cnf);
  EXPECT_GE(result.stats.strengthened_literals, 1u);
  bool found = false;
  for (const Clause& clause : result.simplified.clauses()) {
    if (clause == Clause{Lit::Pos(0), Lit::Pos(2)}) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PreprocessTest, TautologiesDropped) {
  Cnf cnf(2);
  cnf.AddBinary(Lit::Pos(0), Lit::Neg(0));
  const PreprocessResult result = Preprocess(cnf);
  EXPECT_EQ(result.simplified.num_clauses(), 0u);
}

TEST(PreprocessTest, EquisatisfiableOnRandomFormulas) {
  Rng rng(424242);
  int sat_count = 0;
  int unsat_count = 0;
  for (int i = 0; i < 60; ++i) {
    const Cnf cnf = testutil::RandomCnf(rng, 12, 26, 4);
    const bool original_sat = SolveByDpll(cnf).has_value();
    const PreprocessResult result = Preprocess(cnf);
    const auto simplified_model = SolveByDpll(result.simplified);
    EXPECT_EQ(simplified_model.has_value(), original_sat)
        << "iteration " << i;
    original_sat ? ++sat_count : ++unsat_count;
    if (simplified_model) {
      std::vector<bool> padded = *simplified_model;
      padded.resize(static_cast<std::size_t>(cnf.num_vars()), false);
      const auto model = ReconstructModel(result, padded);
      EXPECT_TRUE(cnf.IsSatisfiedBy(model)) << "iteration " << i;
    }
  }
  EXPECT_GT(sat_count, 0);
  EXPECT_GT(unsat_count, 0);
}

TEST(PreprocessTest, ColoringCnfsShrinkUnderSymmetryUnits) {
  // Symmetry restrictions on the direct/muldirect encodings are unit
  // clauses; preprocessing must cascade them and shrink the formula while
  // preserving the answer.
  Rng rng(434343);
  const graph::Graph g = testutil::RandomGraph(rng, 14, 0.4);
  const int k = 5;
  const auto sequence =
      symmetry::SymmetrySequence(g, k, symmetry::Heuristic::kS1);
  const encode::EncodedColoring enc = encode::EncodeColoring(
      g, k, encode::GetEncoding("muldirect"), sequence);
  const PreprocessResult result = Preprocess(enc.cnf);
  EXPECT_LT(result.simplified.num_literals(), enc.cnf.num_literals());

  Solver original_solver;
  SolveResult original = SolveResult::kUnsat;
  if (original_solver.AddCnf(enc.cnf)) original = original_solver.Solve();
  Solver simplified_solver;
  SolveResult simplified = SolveResult::kUnsat;
  if (simplified_solver.AddCnf(result.simplified)) {
    simplified = simplified_solver.Solve();
  }
  EXPECT_EQ(original, simplified);
  if (simplified == SolveResult::kSat) {
    const auto model =
        ReconstructModel(result, simplified_solver.model());
    const auto colors = DecodeColoring(enc, model);
    EXPECT_TRUE(g.IsProperColoring(colors));
  }
}

TEST(PreprocessTest, OptionsDisableStages) {
  Cnf cnf(3);
  cnf.AddBinary(Lit::Pos(0), Lit::Pos(1));
  cnf.AddTernary(Lit::Pos(0), Lit::Pos(1), Lit::Pos(2));
  PreprocessOptions options;
  options.subsumption = false;
  options.self_subsumption = false;
  const PreprocessResult result = Preprocess(cnf, options);
  EXPECT_EQ(result.stats.removed_subsumed, 0u);
  EXPECT_EQ(result.simplified.num_clauses(), 2u);
}

TEST(PreprocessTest, EmptyFormula) {
  const PreprocessResult result = Preprocess(Cnf(4));
  EXPECT_FALSE(result.contradiction);
  EXPECT_EQ(result.simplified.num_clauses(), 0u);
  EXPECT_EQ(result.simplified.num_vars(), 4);
}

}  // namespace
}  // namespace satfr::sat
