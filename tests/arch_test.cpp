#include <gtest/gtest.h>

#include "fpga/arch.h"

namespace satfr::fpga {
namespace {

TEST(ArchTest, CountsForSmallGrid) {
  const Arch arch(4);
  EXPECT_EQ(arch.grid_size(), 4);
  EXPECT_EQ(arch.nodes_per_side(), 5);
  EXPECT_EQ(arch.num_nodes(), 25);
  EXPECT_EQ(arch.num_horizontal_segments(), 20);
  EXPECT_EQ(arch.num_vertical_segments(), 20);
  EXPECT_EQ(arch.num_segments(), 40);
}

TEST(ArchTest, NodeIdRoundTrip) {
  const Arch arch(6);
  for (int y = 0; y <= 6; ++y) {
    for (int x = 0; x <= 6; ++x) {
      const NodeId node = arch.NodeAt(x, y);
      const Coord c = arch.NodeCoord(node);
      EXPECT_EQ(c.x, x);
      EXPECT_EQ(c.y, y);
    }
  }
}

TEST(ArchTest, NodeIdsAreDense) {
  const Arch arch(3);
  std::vector<bool> seen(static_cast<std::size_t>(arch.num_nodes()), false);
  for (int y = 0; y <= 3; ++y) {
    for (int x = 0; x <= 3; ++x) {
      const NodeId node = arch.NodeAt(x, y);
      ASSERT_GE(node, 0);
      ASSERT_LT(node, arch.num_nodes());
      EXPECT_FALSE(seen[static_cast<std::size_t>(node)]);
      seen[static_cast<std::size_t>(node)] = true;
    }
  }
}

TEST(ArchTest, SegmentIdsAreDenseAndRoundTrip) {
  const Arch arch(5);
  std::vector<bool> seen(static_cast<std::size_t>(arch.num_segments()),
                         false);
  for (SegmentIndex s = 0; s < arch.num_segments(); ++s) {
    NodeId a = kInvalidNode;
    NodeId b = kInvalidNode;
    arch.SegmentEndpoints(s, &a, &b);
    EXPECT_NE(a, b);
    EXPECT_EQ(arch.SegmentBetween(a, b), s);
    EXPECT_EQ(arch.SegmentBetween(b, a), s);
    ASSERT_FALSE(seen[static_cast<std::size_t>(s)]);
    seen[static_cast<std::size_t>(s)] = true;
  }
}

TEST(ArchTest, SegmentBetweenNonAdjacentIsInvalid) {
  const Arch arch(4);
  EXPECT_EQ(arch.SegmentBetween(arch.NodeAt(0, 0), arch.NodeAt(2, 0)),
            kInvalidSegment);
  EXPECT_EQ(arch.SegmentBetween(arch.NodeAt(0, 0), arch.NodeAt(1, 1)),
            kInvalidSegment);
  EXPECT_EQ(arch.SegmentBetween(arch.NodeAt(0, 0), arch.NodeAt(0, 0)),
            kInvalidSegment);
}

TEST(ArchTest, HorizontalVerticalClassification) {
  const Arch arch(4);
  EXPECT_TRUE(arch.IsHorizontal(arch.HorizontalSegment(0, 0)));
  EXPECT_FALSE(arch.IsHorizontal(arch.VerticalSegment(0, 0)));
}

TEST(ArchTest, SegmentNames) {
  const Arch arch(4);
  EXPECT_EQ(arch.SegmentName(arch.HorizontalSegment(3, 2)), "H(3,2)");
  EXPECT_EQ(arch.SegmentName(arch.VerticalSegment(0, 1)), "V(0,1)");
}

TEST(ArchTest, BlockAccessNodeMatchesBlockCoord) {
  const Arch arch(4);
  EXPECT_EQ(arch.BlockAccessNode(2, 3), arch.NodeAt(2, 3));
}

TEST(ArchTest, MinimalGrid) {
  const Arch arch(1);
  EXPECT_EQ(arch.num_nodes(), 4);
  EXPECT_EQ(arch.num_segments(), 4);
}

}  // namespace
}  // namespace satfr::fpga
