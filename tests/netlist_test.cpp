#include <gtest/gtest.h>

#include "netlist/netlist.h"

namespace satfr::netlist {
namespace {

Netlist TwoNetCircuit() {
  Netlist nets;
  for (int i = 0; i < 4; ++i) nets.AddBlock("b" + std::to_string(i));
  nets.AddNet(Net{"n0", 0, {1, 2}});
  nets.AddNet(Net{"n1", 3, {0}});
  return nets;
}

TEST(NetlistTest, CountsAndAccessors) {
  const Netlist nets = TwoNetCircuit();
  EXPECT_EQ(nets.num_blocks(), 4);
  EXPECT_EQ(nets.num_nets(), 2);
  EXPECT_EQ(nets.block(0).name, "b0");
  EXPECT_EQ(nets.net(0).name, "n0");
  EXPECT_EQ(nets.net(0).NumPins(), 3);
  EXPECT_EQ(nets.NumTwoPinConnections(), 3);
  EXPECT_EQ(nets.MaxFanout(), 2);
}

TEST(NetlistTest, ValidatePasses) {
  std::string error;
  EXPECT_TRUE(TwoNetCircuit().Validate(&error)) << error;
}

TEST(NetlistTest, ValidateRejectsBadSource) {
  Netlist nets;
  nets.AddBlock("b0");
  nets.AddNet(Net{"n", 5, {0}});
  std::string error;
  EXPECT_FALSE(nets.Validate(&error));
  EXPECT_NE(error.find("invalid source"), std::string::npos);
}

TEST(NetlistTest, ValidateRejectsEmptySinks) {
  Netlist nets;
  nets.AddBlock("b0");
  nets.AddNet(Net{"n", 0, {}});
  std::string error;
  EXPECT_FALSE(nets.Validate(&error));
  EXPECT_NE(error.find("no sinks"), std::string::npos);
}

TEST(NetlistTest, ValidateRejectsSourceAsSink) {
  Netlist nets;
  nets.AddBlock("b0");
  nets.AddBlock("b1");
  nets.AddNet(Net{"n", 0, {1, 0}});
  std::string error;
  EXPECT_FALSE(nets.Validate(&error));
  EXPECT_NE(error.find("source as a sink"), std::string::npos);
}

TEST(NetlistTest, ValidateRejectsDuplicateSinks) {
  Netlist nets;
  nets.AddBlock("b0");
  nets.AddBlock("b1");
  nets.AddNet(Net{"n", 0, {1, 1}});
  std::string error;
  EXPECT_FALSE(nets.Validate(&error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(NetlistTest, ValidateRejectsInvalidSink) {
  Netlist nets;
  nets.AddBlock("b0");
  nets.AddNet(Net{"n", 0, {9}});
  EXPECT_FALSE(nets.Validate());
}

TEST(NetlistTest, EmptyNetlistIsValid) {
  EXPECT_TRUE(Netlist().Validate());
  EXPECT_EQ(Netlist().MaxFanout(), 0);
}

}  // namespace
}  // namespace satfr::netlist
