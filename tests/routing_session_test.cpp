// Tests for the incremental routing session: lifecycle (encode once, solve
// many widths on assumptions), rip-up/re-route semantics, the incremental
// contract counters, error paths, the audit stream's hygiene, and the
// randomized scripted-delta equivalence sweep against the fresh
// extract+encode+solve flow across every evaluated encoding and symmetry
// heuristic.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/runner.h"
#include "common/rng.h"
#include "encode/registry.h"
#include "flow/conflict_graph.h"
#include "flow/detailed_router.h"
#include "flow/routing_session.h"
#include "fpga/device_graph.h"
#include "graph/coloring_bounds.h"
#include "graph/graph.h"
#include "netlist/mcnc_suite.h"
#include "route/global_router.h"
#include "symmetry/symmetry.h"
#include "test_util.h"

namespace satfr::flow {
namespace {

using graph::VertexId;
using sat::SolveResult;

graph::Graph Triangle() {
  graph::Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  return g;
}

/// The "tiny" MCNC instance's conflict graph — the sweep's workhorse.
graph::Graph TinyConflictGraph() {
  const netlist::McncBenchmark bench = netlist::GenerateMcncBenchmark("tiny");
  const fpga::Arch arch(bench.params.grid_size);
  const fpga::DeviceGraph device(arch);
  const route::GlobalRouting routing =
      route::RouteGlobally(device, bench.netlist, bench.placement);
  return BuildConflictGraph(arch, routing);
}

/// Checks that a kSat result's tracks are a proper coloring of the
/// session's current active graph: every active net in [0, width), every
/// inactive net -1, endpoints of every active edge distinct.
void ExpectValidTracks(const RoutingSession& session,
                       const SessionSolveResult& result, int width) {
  ASSERT_EQ(result.status, SolveResult::kSat) << result.error;
  const graph::Graph current = session.ActiveConflictGraph();
  ASSERT_EQ(static_cast<int>(result.tracks.size()), current.num_vertices());
  for (VertexId v = 0; v < current.num_vertices(); ++v) {
    if (session.NetActive(v)) {
      EXPECT_GE(result.tracks[static_cast<std::size_t>(v)], 0) << v;
      EXPECT_LT(result.tracks[static_cast<std::size_t>(v)], width) << v;
    } else {
      EXPECT_EQ(result.tracks[static_cast<std::size_t>(v)], -1) << v;
    }
  }
  for (const auto& [u, v] : current.Edges()) {
    EXPECT_NE(result.tracks[static_cast<std::size_t>(u)],
              result.tracks[static_cast<std::size_t>(v)])
        << "edge " << u << "-" << v;
  }
}

TEST(RoutingSessionTest, SolvesAcrossWidthsWithoutReencoding) {
  const graph::Graph g = TinyConflictGraph();
  const int peak = graph::NumColorsUsed(graph::DsaturColoring(g));
  RoutingSession session(g, peak);
  ASSERT_TRUE(session.ok()) << session.error();

  const SessionSolveResult at_peak = session.Solve(peak);
  ExpectValidTracks(session, at_peak, peak);

  // Fresh flow agrees at every width down to 1.
  for (int width = peak; width >= 1; --width) {
    const SessionSolveResult incremental = session.Solve(width);
    const DetailedRouteResult fresh = RouteDetailedOnGraph(g, width);
    EXPECT_EQ(incremental.status, fresh.status) << "width " << width;
  }
  EXPECT_EQ(session.session_stats().full_encodes, 1u);
  EXPECT_EQ(session.session_stats().graph_extractions, 0u);
}

TEST(RoutingSessionTest, RipUpRelaxesAndRerouteRestores) {
  // A triangle needs 3 tracks; drop any net and 2 suffice; re-route it with
  // both original conflicts and 2 tracks are again too few.
  RoutingSession session(Triangle(), 3);
  ASSERT_TRUE(session.ok()) << session.error();
  EXPECT_EQ(session.Solve(2).status, SolveResult::kUnsat);

  ASSERT_TRUE(session.RipUp(0)) << session.error();
  EXPECT_FALSE(session.NetActive(0));
  EXPECT_EQ(session.num_active(), 2);
  const SessionSolveResult relaxed = session.Solve(2);
  ExpectValidTracks(session, relaxed, 2);

  ASSERT_TRUE(session.Reroute(0, {1, 2})) << session.error();
  EXPECT_TRUE(session.NetActive(0));
  EXPECT_EQ(session.Solve(2).status, SolveResult::kUnsat);
  const SessionSolveResult full = session.Solve(3);
  ExpectValidTracks(session, full, 3);

  const SessionStats& stats = session.session_stats();
  EXPECT_EQ(stats.full_encodes, 1u);
  EXPECT_EQ(stats.graph_extractions, 0u);
  EXPECT_EQ(stats.deltas_applied, 2u);
  // Only the explicit rip-up retired a group: re-routing an inactive net
  // has nothing to retire.
  EXPECT_EQ(stats.groups_retired, 1u);
}

TEST(RoutingSessionTest, RerouteChangesTheConflictSet) {
  // Path 0-1-2 plus edge 0-2 = triangle; re-route 2 to conflict only with
  // 1, making the graph a path, 2-colorable.
  RoutingSession session(Triangle(), 3);
  ASSERT_TRUE(session.ok()) << session.error();
  EXPECT_EQ(session.Solve(2).status, SolveResult::kUnsat);
  ASSERT_TRUE(session.Reroute(2, {1})) << session.error();

  const graph::Graph current = session.ActiveConflictGraph();
  EXPECT_EQ(current.num_edges(), 2u);
  ExpectValidTracks(session, session.Solve(2), 2);
}

TEST(RoutingSessionTest, ErrorPathsLeaveSessionUsable) {
  RoutingSession session(Triangle(), 3);
  ASSERT_TRUE(session.ok()) << session.error();

  EXPECT_FALSE(session.RipUp(-1));
  EXPECT_FALSE(session.RipUp(99));
  EXPECT_FALSE(session.Reroute(0, {0}));      // self-conflict
  EXPECT_FALSE(session.Reroute(0, {1, 1}));   // duplicate partner
  EXPECT_FALSE(session.Reroute(0, {42}));     // unknown partner
  ASSERT_TRUE(session.RipUp(1));
  EXPECT_FALSE(session.RipUp(1));             // already inactive
  EXPECT_FALSE(session.Reroute(0, {1}));      // partner inactive

  EXPECT_EQ(session.Solve(0).status, SolveResult::kUnknown);
  EXPECT_EQ(session.Solve(4).status, SolveResult::kUnknown);
  EXPECT_FALSE(session.Solve(4).error.empty());

  // None of the failures corrupted the session.
  EXPECT_TRUE(session.ok());
  EXPECT_EQ(session.session_stats().deltas_applied, 1u);
  ExpectValidTracks(session, session.Solve(2), 2);
}

TEST(RoutingSessionTest, AuditStreamSatisfiesNetGroupHygiene) {
  RoutingSessionOptions options;
  options.audit = true;
  RoutingSession session(Triangle(), 3, options);
  ASSERT_TRUE(session.ok()) << session.error();
  ASSERT_TRUE(session.RipUp(0));
  ASSERT_TRUE(session.Reroute(0, {1}));
  ASSERT_TRUE(session.Reroute(2, {0, 1}));
  session.Solve(3);

  ASSERT_NE(session.audit_cnf(), nullptr);
  analysis::AnalysisInput input;
  input.cnf = session.audit_cnf();
  input.net_groups = &session.group_table();
  const analysis::AnalysisReport report =
      analysis::MakeDefaultRunner().Run(input);
  for (const analysis::Diagnostic& d : report.diagnostics) {
    EXPECT_NE(d.pass, "net-group-hygiene") << analysis::FormatText(report);
  }
}

// ---------------------------------------------------------------------------
// Randomized scripted-delta equivalence sweep: after every delta the
// session's verdict must match a fresh extract+encode+solve of its own
// active graph, for every evaluated encoding and symmetry heuristic.
// ---------------------------------------------------------------------------

struct ScriptedDelta {
  bool rip_only = false;
  VertexId net = -1;
  std::vector<VertexId> partners;
};

/// Plans a random valid delta against the session's current state, or
/// nothing if none is possible (all nets inactive).
bool PlanDelta(const RoutingSession& session, Rng& rng, ScriptedDelta* out) {
  std::vector<VertexId> active;
  std::vector<VertexId> inactive;
  for (VertexId v = 0; v < session.num_nets(); ++v) {
    (session.NetActive(v) ? active : inactive).push_back(v);
  }
  if (!inactive.empty() && rng.NextBool(0.3)) {
    // Revive an inactive net against a few random active partners.
    out->rip_only = false;
    out->net = inactive[rng.NextBelow(inactive.size())];
    const auto order = rng.Permutation(static_cast<std::uint32_t>(
        active.size()));
    const std::size_t take = std::min<std::size_t>(active.size(), 3);
    out->partners.assign(order.begin(),
                         order.begin() + static_cast<std::ptrdiff_t>(take));
    for (auto& p : out->partners) p = active[p];
    return true;
  }
  if (active.empty()) return false;
  out->net = active[rng.NextBelow(active.size())];
  if (active.size() > 1 && rng.NextBool(0.5)) {
    out->rip_only = true;
    return true;
  }
  // Re-route against the current neighborhood with one conflict dropped.
  out->rip_only = false;
  const graph::Graph current = session.ActiveConflictGraph();
  out->partners = current.Neighbors(out->net);
  if (!out->partners.empty()) {
    out->partners.erase(out->partners.begin() +
                        static_cast<std::ptrdiff_t>(
                            rng.NextBelow(out->partners.size())));
  }
  return true;
}

TEST(RoutingSessionEquivalenceSweep, MatchesFreshFlowAcrossAllEncodings) {
  const graph::Graph g = TinyConflictGraph();
  const int peak = graph::NumColorsUsed(graph::DsaturColoring(g));
  Rng root(0xf9a0b1c2d3e4f500ull);

  for (const std::string& name : encode::EvaluatedEncodingNames()) {
    for (const auto heuristic :
         {symmetry::Heuristic::kNone, symmetry::Heuristic::kB1,
          symmetry::Heuristic::kS1}) {
      RoutingSessionOptions options;
      options.encoding = encode::GetEncoding(name);
      options.heuristic = heuristic;
      RoutingSession session(g, peak, options);
      ASSERT_TRUE(session.ok()) << name << ": " << session.error();

      Rng rng = root.Fork();
      for (int step = 0; step < 4; ++step) {
        ScriptedDelta delta;
        if (!PlanDelta(session, rng, &delta)) break;
        if (delta.rip_only) {
          ASSERT_TRUE(session.RipUp(delta.net))
              << name << " step " << step << ": " << session.error();
        } else {
          ASSERT_TRUE(session.Reroute(delta.net, delta.partners))
              << name << " step " << step << ": " << session.error();
        }
        // Probe a width near the current chromatic ceiling so both SAT and
        // UNSAT verdicts occur along the script.
        const graph::Graph current = session.ActiveConflictGraph();
        const int tight =
            std::max(1, graph::NumColorsUsed(graph::DsaturColoring(current)) -
                            1 + static_cast<int>(rng.NextBelow(2)));
        const int width = std::min(tight, peak);

        const SessionSolveResult incremental = session.Solve(width);
        DetailedRouteOptions fresh_options;
        fresh_options.encoding = options.encoding;
        fresh_options.heuristic = heuristic;
        const DetailedRouteResult fresh =
            RouteDetailedOnGraph(current, width, fresh_options);
        ASSERT_EQ(incremental.status, fresh.status)
            << name << " sym=" << static_cast<int>(heuristic) << " step "
            << step << " width " << width;
        if (incremental.status == SolveResult::kSat) {
          ExpectValidTracks(session, incremental, width);
        }
      }
      EXPECT_EQ(session.session_stats().full_encodes, 1u) << name;
      EXPECT_EQ(session.session_stats().graph_extractions, 0u) << name;
    }
  }
}

}  // namespace
}  // namespace satfr::flow
