#include <gtest/gtest.h>

#include "fpga/device_graph.h"

namespace satfr::fpga {
namespace {

TEST(DeviceGraphTest, HopDegrees) {
  const Arch arch(4);
  const DeviceGraph device(arch);
  // Corners have 2 hops, edges 3, interior 4.
  EXPECT_EQ(device.Hops(arch.NodeAt(0, 0)).size(), 2u);
  EXPECT_EQ(device.Hops(arch.NodeAt(4, 4)).size(), 2u);
  EXPECT_EQ(device.Hops(arch.NodeAt(2, 0)).size(), 3u);
  EXPECT_EQ(device.Hops(arch.NodeAt(2, 2)).size(), 4u);
}

TEST(DeviceGraphTest, HopsCarryCorrectSegments) {
  const Arch arch(3);
  const DeviceGraph device(arch);
  for (NodeId node = 0; node < arch.num_nodes(); ++node) {
    for (const auto& hop : device.Hops(node)) {
      EXPECT_EQ(hop.via, arch.SegmentBetween(node, hop.to));
      EXPECT_NE(hop.via, kInvalidSegment);
    }
  }
}

TEST(DeviceGraphTest, TotalHopEntriesTwicePerSegment) {
  const Arch arch(5);
  const DeviceGraph device(arch);
  std::size_t total = 0;
  for (NodeId node = 0; node < arch.num_nodes(); ++node) {
    total += device.Hops(node).size();
  }
  EXPECT_EQ(total, 2u * static_cast<std::size_t>(arch.num_segments()));
}

TEST(DeviceGraphTest, ManhattanDistance) {
  const Arch arch(5);
  const DeviceGraph device(arch);
  EXPECT_EQ(device.ManhattanDistance(arch.NodeAt(0, 0), arch.NodeAt(3, 4)),
            7);
  EXPECT_EQ(device.ManhattanDistance(arch.NodeAt(2, 2), arch.NodeAt(2, 2)),
            0);
  EXPECT_EQ(device.ManhattanDistance(arch.NodeAt(4, 1), arch.NodeAt(1, 1)),
            3);
}

}  // namespace
}  // namespace satfr::fpga
