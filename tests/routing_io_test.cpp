#include <gtest/gtest.h>

#include <sstream>

#include "fpga/device_graph.h"
#include "netlist/mcnc_suite.h"
#include "route/global_router.h"
#include "route/routing_io.h"

namespace satfr::route {
namespace {

TEST(RoutingIoTest, RoundTripGeneratedRouting) {
  const netlist::McncBenchmark bench =
      netlist::GenerateMcncBenchmark("tiny");
  const fpga::Arch arch(bench.params.grid_size);
  const fpga::DeviceGraph device(arch);
  const GlobalRouting routing =
      RouteGlobally(device, bench.netlist, bench.placement);

  std::ostringstream out;
  WriteGlobalRouting(arch, routing, out);
  std::string error;
  const auto parsed = ParseGlobalRoutingString(out.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->grid_size, arch.grid_size());
  ASSERT_EQ(parsed->routing.routes.size(), routing.routes.size());
  for (std::size_t i = 0; i < routing.routes.size(); ++i) {
    EXPECT_EQ(parsed->routing.routes[i], routing.routes[i]) << i;
    EXPECT_EQ(parsed->routing.two_pin_nets[i].parent,
              routing.two_pin_nets[i].parent);
    EXPECT_EQ(parsed->routing.two_pin_nets[i].source,
              routing.two_pin_nets[i].source);
    EXPECT_EQ(parsed->routing.two_pin_nets[i].sink,
              routing.two_pin_nets[i].sink);
  }
  // Reloaded routing still validates against the placement.
  EXPECT_TRUE(
      ValidateGlobalRouting(arch, bench.placement, parsed->routing, &error))
      << error;
}

TEST(RoutingIoTest, ParseHandWrittenFile) {
  const char* text =
      "satfr_routing 1\n"
      "# a 2x2 fabric\n"
      "grid 2\n"
      "route 0 0 1 : H(0,0) H(1,0)\n"
      "route 1 2 3 : V(0,0)\n";
  std::string error;
  const auto parsed = ParseGlobalRoutingString(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const fpga::Arch arch(2);
  EXPECT_EQ(parsed->routing.routes[0][0], arch.HorizontalSegment(0, 0));
  EXPECT_EQ(parsed->routing.routes[0][1], arch.HorizontalSegment(1, 0));
  EXPECT_EQ(parsed->routing.routes[1][0], arch.VerticalSegment(0, 0));
}

TEST(RoutingIoTest, EmptyRouteAllowed) {
  const auto parsed = ParseGlobalRoutingString(
      "satfr_routing 1\ngrid 2\nroute 0 0 1 :\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->routing.routes[0].empty());
}

TEST(RoutingIoTest, RejectsBadSegment) {
  std::string error;
  EXPECT_FALSE(ParseGlobalRoutingString(
                   "satfr_routing 1\ngrid 2\nroute 0 0 1 : H(9,9)\n", &error)
                   .has_value());
  EXPECT_NE(error.find("bad segment"), std::string::npos);
  EXPECT_FALSE(ParseGlobalRoutingString(
                   "satfr_routing 1\ngrid 2\nroute 0 0 1 : X(0,0)\n")
                   .has_value());
}

TEST(RoutingIoTest, RejectsMissingGrid) {
  std::string error;
  EXPECT_FALSE(ParseGlobalRoutingString(
                   "satfr_routing 1\nroute 0 0 1 : H(0,0)\n", &error)
                   .has_value());
  EXPECT_NE(error.find("route before grid"), std::string::npos);
}

TEST(RoutingIoTest, RejectsMissingHeader) {
  EXPECT_FALSE(ParseGlobalRoutingString("grid 2\n").has_value());
}

}  // namespace
}  // namespace satfr::route
