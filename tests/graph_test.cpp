#include <gtest/gtest.h>

#include "graph/graph.h"

namespace satfr::graph {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
}

TEST(GraphTest, AddVertexGrows) {
  Graph g;
  EXPECT_EQ(g.AddVertex(), 0);
  EXPECT_EQ(g.AddVertex(), 1);
  EXPECT_EQ(g.num_vertices(), 2);
}

TEST(GraphTest, AddEdgeBasics) {
  Graph g(3);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphTest, DuplicateEdgeRejected) {
  Graph g(3);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(1, 0));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
}

TEST(GraphTest, SelfLoopIgnored) {
  Graph g(2);
  EXPECT_FALSE(g.AddEdge(1, 1));
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphTest, DegreesAndMaxDegree) {
  Graph g(4);  // star centered at 0
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  EXPECT_EQ(g.Degree(0), 3u);
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(g.MaxDegree(), 3u);
}

TEST(GraphTest, NeighborDegreeSum) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  // Neighbors of 0 are {1 (deg 2), 2 (deg 3)}.
  EXPECT_EQ(g.NeighborDegreeSum(0), 5u);
  // Neighbors of 3 are {2 (deg 3)}.
  EXPECT_EQ(g.NeighborDegreeSum(3), 3u);
}

TEST(GraphTest, EdgesSortedCanonical) {
  Graph g(4);
  g.AddEdge(3, 1);
  g.AddEdge(2, 0);
  const auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], std::make_pair(VertexId{0}, VertexId{2}));
  EXPECT_EQ(edges[1], std::make_pair(VertexId{1}, VertexId{3}));
}

TEST(GraphTest, HasEdgeOutOfRangeIsFalse) {
  Graph g(2);
  EXPECT_FALSE(g.HasEdge(-1, 0));
  EXPECT_FALSE(g.HasEdge(0, 5));
}

TEST(GraphTest, ProperColoringCheck) {
  Graph g(3);  // triangle
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  EXPECT_TRUE(g.IsProperColoring({0, 1, 2}));
  EXPECT_FALSE(g.IsProperColoring({0, 1, 1}));
  EXPECT_FALSE(g.IsProperColoring({0, 0, 1}));
  EXPECT_FALSE(g.IsProperColoring({0, 1}));  // too short
}

TEST(GraphTest, ProperColoringOnEdgelessGraph) {
  Graph g(3);
  EXPECT_TRUE(g.IsProperColoring({0, 0, 0}));
}

}  // namespace
}  // namespace satfr::graph
