#include <gtest/gtest.h>

#include "route/maze_router.h"

namespace satfr::route {
namespace {

using fpga::Arch;
using fpga::DeviceGraph;
using fpga::NodeId;
using fpga::SegmentIndex;

TEST(MazeRouterTest, TrivialSameNode) {
  const Arch arch(4);
  const DeviceGraph device(arch);
  const auto path =
      FindShortestPath(device, arch.NodeAt(1, 1), arch.NodeAt(1, 1));
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->empty());
}

TEST(MazeRouterTest, ShortestPathHasManhattanLength) {
  const Arch arch(6);
  const DeviceGraph device(arch);
  for (const auto& [x1, y1, x2, y2] :
       std::vector<std::tuple<int, int, int, int>>{
           {0, 0, 6, 6}, {2, 5, 4, 1}, {0, 3, 6, 3}, {1, 1, 1, 4}}) {
    const NodeId a = arch.NodeAt(x1, y1);
    const NodeId b = arch.NodeAt(x2, y2);
    const auto path = FindShortestPath(device, a, b);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(static_cast<int>(path->size()),
              device.ManhattanDistance(a, b));
  }
}

TEST(MazeRouterTest, PathIsConnected) {
  const Arch arch(5);
  const DeviceGraph device(arch);
  const NodeId from = arch.NodeAt(0, 4);
  const NodeId to = arch.NodeAt(5, 0);
  const auto path = FindShortestPath(device, from, to);
  ASSERT_TRUE(path.has_value());
  NodeId at = from;
  for (const SegmentIndex seg : *path) {
    NodeId a = fpga::kInvalidNode;
    NodeId b = fpga::kInvalidNode;
    arch.SegmentEndpoints(seg, &a, &b);
    ASSERT_TRUE(a == at || b == at);
    at = (a == at) ? b : a;
  }
  EXPECT_EQ(at, to);
}

TEST(MazeRouterTest, AvoidsExpensiveSegments) {
  // Make the direct corridor between (0,0) and (2,0) expensive; the router
  // must detour around it.
  const Arch arch(2);
  const DeviceGraph device(arch);
  const SegmentIndex blocked_a = arch.HorizontalSegment(0, 0);
  const SegmentIndex blocked_b = arch.HorizontalSegment(1, 0);
  const auto cost = [&](SegmentIndex seg) {
    return (seg == blocked_a || seg == blocked_b) ? 100.0 : 1.0;
  };
  const auto path =
      FindPath(device, arch.NodeAt(0, 0), arch.NodeAt(2, 0), cost);
  ASSERT_TRUE(path.has_value());
  for (const SegmentIndex seg : *path) {
    EXPECT_NE(seg, blocked_a);
    EXPECT_NE(seg, blocked_b);
  }
  EXPECT_EQ(path->size(), 4u);  // detour via y=1
}

TEST(MazeRouterTest, CostTiesStillOptimal) {
  const Arch arch(8);
  const DeviceGraph device(arch);
  // Uniform cost 2.0: path length must still be Manhattan distance.
  const auto path = FindPath(device, arch.NodeAt(0, 0), arch.NodeAt(5, 3),
                             [](SegmentIndex) { return 2.0; });
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 8u);
}

}  // namespace
}  // namespace satfr::route
