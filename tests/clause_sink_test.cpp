// ClauseSink unit tests plus the sink-equivalence sweep: for every
// evaluated encoding and symmetry heuristic, the streamed clause sequence
// must match the materialized EncodeColoring output clause for clause, and
// the direct-to-solver path must decode to the same answer.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "encode/csp_to_cnf.h"
#include "encode/registry.h"
#include "sat/clause_sink.h"
#include "sat/dimacs.h"
#include "sat/solver.h"
#include "symmetry/symmetry.h"
#include "test_util.h"

namespace satfr::sat {
namespace {

TEST(CnfCollectorSinkTest, MatchesDirectCnfConstruction) {
  Cnf direct(4);
  direct.AddUnit(Lit::Pos(0));
  direct.AddBinary(Lit::Neg(1), Lit::Pos(2));
  direct.AddTernary(Lit::Pos(1), Lit::Neg(2), Lit::Pos(3));

  Cnf collected;
  CnfCollectorSink sink(collected);
  sink.EnsureVars(4);
  sink.EmitUnit(Lit::Pos(0));
  sink.EmitBinary(Lit::Neg(1), Lit::Pos(2));
  sink.EmitTernary(Lit::Pos(1), Lit::Neg(2), Lit::Pos(3));
  EXPECT_TRUE(sink.Finish());

  EXPECT_EQ(collected.num_vars(), direct.num_vars());
  EXPECT_EQ(collected.clauses(), direct.clauses());
  EXPECT_EQ(sink.num_clauses(), 3u);
  EXPECT_EQ(sink.num_literals(), 6u);
}

TEST(CnfCollectorSinkTest, EmitVarAllocatesSequentially) {
  Cnf cnf;
  CnfCollectorSink sink(cnf);
  EXPECT_EQ(sink.EmitVar(), 0);
  EXPECT_EQ(sink.EmitVar(), 1);
  sink.EnsureVars(5);
  EXPECT_EQ(sink.EmitVar(), 5);
  EXPECT_EQ(cnf.num_vars(), 6);
}

TEST(SolverSinkTest, SolvesWithoutIntermediateCnf) {
  Solver solver;
  SolverSink sink(solver);
  sink.EnsureVars(2);
  // (a | b) & (~a | b) & (~b | a) -> a=b=true.
  sink.EmitBinary(Lit::Pos(0), Lit::Pos(1));
  sink.EmitBinary(Lit::Neg(0), Lit::Pos(1));
  sink.EmitBinary(Lit::Neg(1), Lit::Pos(0));
  EXPECT_TRUE(sink.Finish());
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
  EXPECT_TRUE(solver.model()[0]);
  EXPECT_TRUE(solver.model()[1]);
}

TEST(SolverSinkTest, FinishFalseOnTrivialUnsat) {
  Solver solver;
  SolverSink sink(solver);
  sink.EnsureVars(1);
  sink.EmitUnit(Lit::Pos(0));
  sink.EmitUnit(Lit::Neg(0));
  EXPECT_FALSE(sink.Finish());
  EXPECT_FALSE(solver.okay());
}

TEST(StreamingDimacsSinkTest, RoundTripsThroughParserWithBackPatchedHeader) {
  std::stringstream out;
  StreamingDimacsSink sink(out, {"a comment", "another"});
  sink.EnsureVars(3);
  sink.EmitBinary(Lit::Pos(0), Lit::Neg(2));
  sink.EmitUnit(Lit::Pos(1));
  sink.EmitTernary(Lit::Neg(0), Lit::Pos(1), Lit::Pos(2));
  ASSERT_TRUE(sink.Finish());

  const std::string text = out.str();
  EXPECT_NE(text.find("c a comment"), std::string::npos);
  EXPECT_NE(text.find("p cnf"), std::string::npos);

  const std::optional<Cnf> parsed = ParseDimacsString(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_vars(), 3);
  ASSERT_EQ(parsed->num_clauses(), 3u);
  EXPECT_EQ(parsed->clauses()[0], (Clause{Lit::Pos(0), Lit::Neg(2)}));
  EXPECT_EQ(parsed->clauses()[1], (Clause{Lit::Pos(1)}));
  EXPECT_EQ(parsed->clauses()[2],
            (Clause{Lit::Neg(0), Lit::Pos(1), Lit::Pos(2)}));
}

TEST(StreamingDimacsSinkTest, MatchesWriteDimacsOnSameCnf) {
  Rng rng(1234);
  const Cnf cnf = testutil::RandomCnf(rng, 12, 40, 4);

  std::stringstream materialized;
  WriteDimacs(cnf, materialized);

  std::stringstream streamed;
  StreamingDimacsSink sink(streamed);
  sink.EnsureVars(cnf.num_vars());
  for (const Clause& clause : cnf.clauses()) sink.EmitClause(clause);
  ASSERT_TRUE(sink.Finish());

  // Both must parse to the same formula (header whitespace may differ
  // because the streaming header is back-patched into a fixed-width field).
  const std::optional<Cnf> a = ParseDimacsString(materialized.str());
  const std::optional<Cnf> b = ParseDimacsString(streamed.str());
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->num_vars(), b->num_vars());
  EXPECT_EQ(a->clauses(), b->clauses());
}

TEST(CountingSinkTest, HistogramCountsLengths) {
  CountingSink sink;
  sink.EnsureVars(4);
  sink.EmitUnit(Lit::Pos(0));
  sink.EmitBinary(Lit::Pos(0), Lit::Pos(1));
  sink.EmitBinary(Lit::Neg(0), Lit::Pos(2));
  sink.EmitTernary(Lit::Pos(1), Lit::Pos(2), Lit::Pos(3));
  EXPECT_TRUE(sink.Finish());
  EXPECT_EQ(sink.num_clauses(), 4u);
  EXPECT_EQ(sink.num_literals(), 8u);
  EXPECT_EQ(sink.NumClausesOfSize(1), 1u);
  EXPECT_EQ(sink.NumClausesOfSize(2), 2u);
  EXPECT_EQ(sink.NumClausesOfSize(3), 1u);
  EXPECT_EQ(sink.NumClausesOfSize(4), 0u);
  EXPECT_EQ(sink.NumClausesOfSize(100), 0u);
}

TEST(SimplifyingSinkTest, RemovesDuplicateLiterals) {
  Cnf cnf;
  CnfCollectorSink collect(cnf);
  SimplifyingSink sink(collect);
  sink.EnsureVars(2);
  const Lit lits[3] = {Lit::Pos(0), Lit::Pos(1), Lit::Pos(0)};
  sink.EmitClause(lits, 3);
  EXPECT_TRUE(sink.Finish());
  ASSERT_EQ(cnf.num_clauses(), 1u);
  EXPECT_EQ(cnf.clauses()[0], (Clause{Lit::Pos(0), Lit::Pos(1)}));
  EXPECT_EQ(sink.stats().eliminated_literals, 1u);
}

TEST(SimplifyingSinkTest, DropsTautologies) {
  Cnf cnf;
  CnfCollectorSink collect(cnf);
  SimplifyingSink sink(collect);
  sink.EnsureVars(2);
  sink.EmitBinary(Lit::Pos(0), Lit::Neg(0));
  EXPECT_TRUE(sink.Finish());
  EXPECT_EQ(cnf.num_clauses(), 0u);
  EXPECT_EQ(sink.stats().dropped_tautologies, 1u);
  // The sink's own counters still see the emission (Table 1 counts are
  // pre-simplification).
  EXPECT_EQ(sink.num_clauses(), 1u);
}

TEST(SimplifyingSinkTest, UnitFixesVariableAndFiltersLaterClauses) {
  Cnf cnf;
  CnfCollectorSink collect(cnf);
  SimplifyingSink sink(collect);
  sink.EnsureVars(3);
  sink.EmitUnit(Lit::Pos(0));                    // fixes x0 = true
  sink.EmitBinary(Lit::Pos(0), Lit::Pos(1));     // satisfied -> dropped
  sink.EmitBinary(Lit::Neg(0), Lit::Pos(2));     // strengthened to (x2)
  EXPECT_TRUE(sink.Finish());
  ASSERT_EQ(cnf.num_clauses(), 2u);
  EXPECT_EQ(cnf.clauses()[0], (Clause{Lit::Pos(0)}));
  EXPECT_EQ(cnf.clauses()[1], (Clause{Lit::Pos(2)}));
  EXPECT_EQ(sink.stats().dropped_satisfied, 1u);
  EXPECT_EQ(sink.stats().eliminated_literals, 1u);
  // Both the original unit and the strengthened-to-unit fixed a variable.
  EXPECT_EQ(sink.stats().fixed_units, 2u);
}

TEST(SimplifyingSinkTest, ContradictionForwardsEmptyClause) {
  Cnf cnf;
  CnfCollectorSink collect(cnf);
  SimplifyingSink sink(collect);
  sink.EnsureVars(1);
  sink.EmitUnit(Lit::Pos(0));
  sink.EmitUnit(Lit::Neg(0));  // strengthened to the empty clause
  EXPECT_FALSE(sink.Finish());
  EXPECT_TRUE(sink.contradiction());
  ASSERT_EQ(cnf.num_clauses(), 2u);
  EXPECT_TRUE(cnf.clauses()[1].empty());
}

TEST(SimplifyingSinkTest, SatisfiedClauseWithComplementaryFixedPair) {
  // x0 fixed false; a later (x0 | ~x0 | x1) contains a complementary pair
  // on a fixed variable: it must count as satisfied (~x0 is true), not as
  // a tautology.
  Cnf cnf;
  CnfCollectorSink collect(cnf);
  SimplifyingSink sink(collect);
  sink.EnsureVars(2);
  sink.EmitUnit(Lit::Neg(0));
  sink.EmitTernary(Lit::Pos(0), Lit::Neg(0), Lit::Pos(1));
  EXPECT_TRUE(sink.Finish());
  EXPECT_EQ(cnf.num_clauses(), 1u);
  EXPECT_EQ(sink.stats().dropped_satisfied, 1u);
  EXPECT_EQ(sink.stats().dropped_tautologies, 0u);
}

TEST(SimplifyingSinkTest, PreservesSatisfiabilityOnRandomCnfs) {
  Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    const Cnf original = testutil::RandomCnf(rng, 8, 30, 3);

    Solver plain;
    plain.AddCnf(original);
    const SolveResult expected =
        plain.okay() ? plain.Solve() : SolveResult::kUnsat;

    Solver simplified_solver;
    SolverSink down(simplified_solver);
    SimplifyingSink sink(down);
    sink.EnsureVars(original.num_vars());
    for (const Clause& clause : original.clauses()) sink.EmitClause(clause);
    const SolveResult got =
        sink.Finish() && simplified_solver.okay() ? simplified_solver.Solve()
                                                  : SolveResult::kUnsat;
    EXPECT_EQ(got, expected) << "iteration " << i;
  }
}

}  // namespace
}  // namespace satfr::sat

namespace satfr::encode {
namespace {

graph::Graph SweepGraph() {
  // Dense enough that conflict and symmetry clauses all appear, small
  // enough that the 14 x 3 sweep stays fast.
  graph::Graph g(7);
  for (graph::VertexId u = 0; u < 7; ++u) {
    g.AddEdge(u, (u + 1) % 7);
    g.AddEdge(u, (u + 2) % 7);
  }
  return g;
}

// Every evaluated encoding x symmetry heuristic: the streamed clause
// sequence equals the materialized one, counters agree with the exact
// clause-count formula, and the direct-to-solver path round-trips.
class SinkEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, symmetry::Heuristic>> {};

TEST_P(SinkEquivalenceTest, StreamedEqualsMaterialized) {
  const EncodingSpec spec = GetEncoding(std::get<0>(GetParam()));
  const symmetry::Heuristic heuristic = std::get<1>(GetParam());
  const graph::Graph g = SweepGraph();
  const int k = 4;
  const std::vector<graph::VertexId> sequence =
      heuristic == symmetry::Heuristic::kNone
          ? std::vector<graph::VertexId>{}
          : symmetry::SymmetrySequence(g, k, heuristic);

  const EncodedColoring materialized = EncodeColoring(g, k, spec, sequence);

  // Collector path reproduces the materialized Cnf clause for clause.
  sat::Cnf streamed;
  sat::CnfCollectorSink collector(streamed);
  const ColoringLayout layout =
      EncodeColoringToSink(g, k, spec, sequence, collector);
  ASSERT_TRUE(collector.Finish());
  EXPECT_EQ(streamed.num_vars(), materialized.cnf.num_vars());
  EXPECT_EQ(streamed.clauses(), materialized.cnf.clauses());

  // Layout metadata matches.
  EXPECT_EQ(layout.num_vars, materialized.num_vars);
  EXPECT_EQ(layout.num_colors, materialized.num_colors);
  EXPECT_EQ(layout.vertex_offset, materialized.vertex_offset);
  EXPECT_EQ(NumberingKey(layout.domain, layout.num_colors, sequence),
            NumberingKey(materialized.domain, materialized.num_colors,
                         sequence));
  EXPECT_EQ(layout.stats.TotalEmitted(), materialized.cnf.num_clauses());
  EXPECT_EQ(ExpectedColoringClauses(g, layout.domain, k, sequence.size()),
            collector.num_clauses());

  // Direct-to-solver path: same variable/clause counts, and the model
  // decodes into a proper coloring through the layout alone (no Cnf).
  sat::Solver solver;
  sat::SolverSink direct(solver);
  EncodeColoringToSink(g, k, spec, sequence, direct);
  ASSERT_TRUE(direct.Finish());
  EXPECT_EQ(direct.num_vars(), materialized.cnf.num_vars());
  EXPECT_EQ(direct.num_clauses(), materialized.cnf.num_clauses());
  ASSERT_EQ(solver.Solve(), sat::SolveResult::kSat);  // chi(C7^2) <= 4
  const std::vector<int> colors = DecodeColoring(layout, solver.model());
  EXPECT_TRUE(g.IsProperColoring(colors)) << spec.name;
  for (const int c : colors) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EvaluatedEncodings, SinkEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(EvaluatedEncodingNames()),
                       ::testing::Values(symmetry::Heuristic::kNone,
                                         symmetry::Heuristic::kB1,
                                         symmetry::Heuristic::kS1)),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, symmetry::Heuristic>>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      const symmetry::Heuristic h = std::get<1>(info.param);
      return name + "_" +
             (h == symmetry::Heuristic::kNone ? "none" : symmetry::ToString(h));
    });

}  // namespace
}  // namespace satfr::encode
