#include <gtest/gtest.h>

#include "encode/cube.h"

namespace satfr::encode {
namespace {

using sat::Clause;
using sat::Lit;

TEST(CubeTest, NegateCubeBasics) {
  const Cube cube{Lit::Pos(0), Lit::Neg(1)};
  EXPECT_EQ(NegateCube(cube, 0), (Clause{Lit::Neg(0), Lit::Pos(1)}));
  EXPECT_EQ(NegateCube(cube, 10), (Clause{Lit::Neg(10), Lit::Pos(11)}));
  EXPECT_TRUE(NegateCube({}, 5).empty());
}

TEST(CubeTest, ConflictClauseConcatenatesNegations) {
  const Cube a{Lit::Pos(0)};
  const Cube b{Lit::Neg(0), Lit::Pos(1)};
  const Clause clause = ConflictClause(a, 0, b, 4);
  EXPECT_EQ(clause, (Clause{Lit::Neg(0), Lit::Pos(4), Lit::Neg(5)}));
}

TEST(CubeTest, CubeSatisfiedHonorsOffsetAndSign) {
  const Cube cube{Lit::Pos(0), Lit::Neg(1)};
  // Model over 4 vars; cube at offset 2 reads vars 2 and 3.
  EXPECT_TRUE(CubeSatisfied(cube, 2, {false, false, true, false}));
  EXPECT_FALSE(CubeSatisfied(cube, 2, {false, false, true, true}));
  EXPECT_FALSE(CubeSatisfied(cube, 2, {false, false, false, false}));
  EXPECT_TRUE(CubeSatisfied({}, 0, {}));  // empty cube always true
}

TEST(CubeTest, ConcatCubesShiftsSecondOperand) {
  const Cube a{Lit::Pos(0)};
  const Cube b{Lit::Neg(0), Lit::Pos(2)};
  const Cube combined = ConcatCubes(a, b, 3);
  EXPECT_EQ(combined, (Cube{Lit::Pos(0), Lit::Neg(3), Lit::Pos(5)}));
}

TEST(CubeTest, ShiftClause) {
  const Clause clause{Lit::Pos(1), Lit::Neg(2)};
  EXPECT_EQ(ShiftClause(clause, 7), (Clause{Lit::Pos(8), Lit::Neg(9)}));
  EXPECT_EQ(ShiftClause(clause, 0), clause);
}

}  // namespace
}  // namespace satfr::encode
