#include "cube/work_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace satfr::cube {
namespace {

TEST(WorkStealingDequeTest, OwnerPopsLifo) {
  WorkStealingDeque deque(8);
  deque.PushBottom(1);
  deque.PushBottom(2);
  deque.PushBottom(3);
  std::int64_t item = 0;
  EXPECT_TRUE(deque.PopBottom(&item));
  EXPECT_EQ(item, 3);
  EXPECT_TRUE(deque.PopBottom(&item));
  EXPECT_EQ(item, 2);
  EXPECT_TRUE(deque.PopBottom(&item));
  EXPECT_EQ(item, 1);
  EXPECT_FALSE(deque.PopBottom(&item));
}

TEST(WorkStealingDequeTest, ThievesStealFifo) {
  WorkStealingDeque deque(8);
  deque.PushBottom(1);
  deque.PushBottom(2);
  deque.PushBottom(3);
  std::int64_t item = 0;
  EXPECT_TRUE(deque.Steal(&item));
  EXPECT_EQ(item, 1);
  EXPECT_TRUE(deque.Steal(&item));
  EXPECT_EQ(item, 2);
  EXPECT_TRUE(deque.Steal(&item));
  EXPECT_EQ(item, 3);
  EXPECT_FALSE(deque.Steal(&item));
}

TEST(WorkStealingDequeTest, EmptyAfterDrain) {
  WorkStealingDeque deque(4);
  EXPECT_TRUE(deque.Empty());
  deque.PushBottom(7);
  EXPECT_FALSE(deque.Empty());
  std::int64_t item = 0;
  EXPECT_TRUE(deque.PopBottom(&item));
  EXPECT_TRUE(deque.Empty());
}

TEST(WorkStealingDequeTest, StealVersusPopRaceDeliversEachItemOnce) {
  // TSan target and the core linearizability property: with one owner
  // popping and several thieves stealing, every pushed item must be
  // delivered to exactly one consumer — the last-element CAS race between
  // PopBottom and Steal can award the item to either side but never to
  // both, and never to no one while the deque still holds it.
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  WorkStealingDeque deque(kItems);
  std::vector<std::atomic<int>> seen(kItems);
  for (auto& s : seen) s.store(0);
  std::atomic<bool> owner_done{false};

  std::thread owner([&] {
    // Interleave pushes and pops so the bottom end stays hot while thieves
    // chew the top: push two, pop one, then drain.
    std::int64_t item = 0;
    for (int i = 0; i < kItems; ++i) {
      deque.PushBottom(i);
      if ((i & 1) != 0 && deque.PopBottom(&item)) {
        seen[static_cast<std::size_t>(item)].fetch_add(1);
      }
    }
    while (deque.PopBottom(&item)) {
      seen[static_cast<std::size_t>(item)].fetch_add(1);
    }
    owner_done.store(true);
  });
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::int64_t item = 0;
      while (!owner_done.load() || !deque.Empty()) {
        if (deque.Steal(&item)) {
          seen[static_cast<std::size_t>(item)].fetch_add(1);
        }
      }
    });
  }
  owner.join();
  for (std::thread& t : thieves) t.join();

  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

TEST(WorkStealingDequeTest, SingleItemContention) {
  // The hardest case for the CAS protocol: a deque that only ever holds one
  // element, fought over by the owner and a thief simultaneously.
  constexpr int kRounds = 10000;
  WorkStealingDeque deque(2);
  std::atomic<int> delivered{0};
  std::atomic<bool> done{false};
  std::thread thief([&] {
    std::int64_t item = 0;
    while (!done.load()) {
      if (deque.Steal(&item)) delivered.fetch_add(1);
    }
  });
  std::int64_t item = 0;
  int owner_got = 0;
  for (int r = 0; r < kRounds; ++r) {
    deque.PushBottom(r);
    if (deque.PopBottom(&item)) ++owner_got;
    // A lost pop means the thief has (or will momentarily have) the item;
    // wait until it lands so each round stays one-in-one-out.
    while (owner_got + delivered.load() != r + 1) {
      std::this_thread::yield();
    }
  }
  done.store(true);
  thief.join();
  EXPECT_EQ(owner_got + delivered.load(), kRounds);
  EXPECT_TRUE(deque.Empty());
}

}  // namespace
}  // namespace satfr::cube
