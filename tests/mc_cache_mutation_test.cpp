// Mutation counterpart of the cache seqlock litmus (see
// tests/mc_mutation_test.cpp for the idea): this binary is built with
// SATFR_MC_MUTATE_CACHE_PUBLISH_RELEASE, which weakens the seqlock
// writer's even-generation store from release to relaxed in
// src/service/cache.h. A reader can then acquire-load the new (even)
// generation while the payload stores are still invisible — pairing a
// fresh generation with stale words — and the exact litmus body that must
// pass in tests/mc_litmus_test.cpp has to FAIL here, with a replayable
// trail. The cache header is header-only for everything this test touches,
// so linking only satfr_mc keeps the mutated inline definitions from
// colliding with the healthy ones inside satfr_service.

#if !defined(SATFR_MODEL_CHECK)
#error "mc_cache_mutation_test requires a SATFR_MODEL_CHECK build"
#endif
#if !defined(SATFR_MC_MUTATE_CACHE_PUBLISH_RELEASE)
#error "mc_cache_mutation_test requires SATFR_MC_MUTATE_CACHE_PUBLISH_RELEASE"
#endif

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "mc/model_check.h"
#include "service/cache.h"

namespace satfr {
namespace {

// Identical to SeqlockNoTornNoStaleBody in tests/mc_litmus_test.cpp.
void SeqlockNoTornNoStaleBody() {
  auto slot =
      std::make_shared<service::SeqlockedSlot<service::VerdictSummary>>();
  mc::Thread writer([slot] {
    for (std::int32_t i = 1; i <= 2; ++i) {
      service::VerdictSummary s;
      s.key_hash = 100 + static_cast<std::uint64_t>(i);
      s.status = i;
      s.width = 10 * i;
      s.cold_solve_seconds = i;
      slot->Publish(s);
    }
  });
  mc::Thread reader([slot] {
    service::VerdictSummary out;
    for (int round = 0; round < 3; ++round) {
      if (slot->TryRead(&out)) {
        const std::int32_t i = out.status;
        MC_CHECK(i == 1 || i == 2, "stale read: unpublished payload");
        MC_CHECK(out.key_hash == 100 + static_cast<std::uint64_t>(i),
                 "torn read: key from a different publish");
        MC_CHECK(out.width == 10 * i,
                 "torn read: width from a different publish");
        MC_CHECK(out.cold_solve_seconds == static_cast<double>(i),
                 "torn read: timing from a different publish");
      }
      mc::Yield();
    }
  });
  writer.Join();
  reader.Join();
  service::VerdictSummary final_read;
  MC_CHECK(slot->TryRead(&final_read), "settled slot unreadable");
  MC_CHECK(final_read.status == 2 && final_read.key_hash == 102 &&
               final_read.width == 20,
           "settled slot lost the last publish");
}

TEST(McMutation, CatchesRelaxedSeqlockPublish) {
  mc::ModelCheckOptions opts;
  opts.max_preemptions = 2;
  opts.max_stale_reads = 2;
  opts.max_exhaustive_schedules = 10000;
  opts.random_schedules = 1000;
  const mc::ModelCheckResult res = mc::Check(SeqlockNoTornNoStaleBody, opts);
  ASSERT_FALSE(res.ok)
      << "checker did NOT catch the relaxed seqlock publish";
  EXPECT_NE(res.failure.find("MC_CHECK failed"), std::string::npos)
      << res.failure;
  ASSERT_FALSE(res.failing_trail.empty());

  mc::ModelCheckOptions replay;
  replay.replay_trail = res.failing_trail;
  const mc::ModelCheckResult again = mc::Check(SeqlockNoTornNoStaleBody,
                                               replay);
  ASSERT_FALSE(again.ok) << "failing trail replayed clean";
  EXPECT_EQ(again.failure, res.failure);
}

}  // namespace
}  // namespace satfr
