// Tests of the b1 / s1 symmetry-breaking heuristics (§5) and of the
// soundness of the color restriction (satisfiability preservation).
#include <gtest/gtest.h>

#include <set>

#include "encode/csp_to_cnf.h"
#include "encode/registry.h"
#include "graph/coloring_bounds.h"
#include "sat/solver.h"
#include "symmetry/symmetry.h"
#include "test_util.h"

namespace satfr::symmetry {
namespace {

using graph::Graph;
using graph::VertexId;

// Star with an attached path: degrees 0:4(center), others small.
Graph StarPlusPath() {
  Graph g(7);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(0, 4);
  g.AddEdge(4, 5);
  g.AddEdge(5, 6);
  return g;
}

TEST(SymmetryTest, NoneGivesEmptySequence) {
  EXPECT_TRUE(SymmetrySequence(StarPlusPath(), 4, Heuristic::kNone).empty());
}

TEST(SymmetryTest, DegenerateCases) {
  EXPECT_TRUE(SymmetrySequence(Graph(), 4, Heuristic::kS1).empty());
  EXPECT_TRUE(SymmetrySequence(StarPlusPath(), 1, Heuristic::kS1).empty());
  EXPECT_TRUE(SymmetrySequence(StarPlusPath(), 0, Heuristic::kB1).empty());
}

TEST(SymmetryTest, B1StartsAtMaxDegreeThenNeighbors) {
  const Graph g = StarPlusPath();
  const auto seq = SymmetrySequence(g, 4, Heuristic::kB1);
  // K-1 = 3 vertices: center 0, then its neighbors by degree:
  // 4 (degree 2) before 1/2/3 (degree 1).
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq[0], 0);
  EXPECT_EQ(seq[1], 4);
  // Third entry is one of the degree-1 neighbors; ties by neighbor degree
  // sum (all equal: 4) then by id -> vertex 1.
  EXPECT_EQ(seq[2], 1);
}

TEST(SymmetryTest, B1OnlyUsesSeedAndItsNeighbors) {
  const Graph g = StarPlusPath();
  const auto seq = SymmetrySequence(g, 7, Heuristic::kB1);
  // Even with a large K, b1 can only pick the seed plus its 4 neighbors.
  EXPECT_LE(seq.size(), 5u);
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_TRUE(g.HasEdge(seq[0], seq[i]));
  }
}

TEST(SymmetryTest, S1PicksGloballyHighestDegrees) {
  const Graph g = StarPlusPath();
  const auto seq = SymmetrySequence(g, 4, Heuristic::kS1);
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq[0], 0);  // degree 4
  // Degree-2 vertices are 4 and 5; tie broken by neighbor degree sum:
  // 4's neighbors {0,5} sum 6; 5's neighbors {4,6} sum 3.
  EXPECT_EQ(seq[1], 4);
  EXPECT_EQ(seq[2], 5);
}

TEST(SymmetryTest, SequencesHaveDistinctVertices) {
  Rng rng(4242);
  for (int i = 0; i < 20; ++i) {
    const Graph g = testutil::RandomGraph(rng, 15, 0.3);
    for (const Heuristic h : {Heuristic::kB1, Heuristic::kS1}) {
      const auto seq = SymmetrySequence(g, 6, h);
      EXPECT_LE(seq.size(), 5u);
      const std::set<VertexId> unique(seq.begin(), seq.end());
      EXPECT_EQ(unique.size(), seq.size());
      for (const VertexId v : seq) {
        EXPECT_GE(v, 0);
        EXPECT_LT(v, g.num_vertices());
      }
    }
  }
}

TEST(SymmetryTest, RenamingTheoremHoldsForProperColorings) {
  // Van Gelder's argument: *any* proper coloring can be renamed to satisfy
  // the restriction, for any vertex sequence. Exercise it on random graphs
  // and random DSATUR colorings.
  Rng rng(515);
  for (int i = 0; i < 25; ++i) {
    const Graph g = testutil::RandomGraph(rng, 12, 0.4);
    const auto colors = graph::DsaturColoring(g);
    const int k = graph::NumColorsUsed(colors) + static_cast<int>(
                      rng.NextBelow(3));
    for (const Heuristic h : {Heuristic::kB1, Heuristic::kS1}) {
      const auto seq = SymmetrySequence(g, k, h);
      EXPECT_TRUE(ColoringRespectsSequenceUpToRenaming(colors, k, seq));
    }
  }
}

// The load-bearing soundness property: adding symmetry clauses never
// changes satisfiability, for every encoding and both heuristics.
class SymmetrySoundnessTest
    : public ::testing::TestWithParam<std::tuple<std::string, Heuristic>> {};

TEST_P(SymmetrySoundnessTest, PreservesSatisfiability) {
  const auto& [encoding_name, heuristic] = GetParam();
  const encode::EncodingSpec spec = encode::GetEncoding(encoding_name);
  Rng rng(StableHash64(encoding_name) + static_cast<int>(heuristic));
  for (int i = 0; i < 5; ++i) {
    const Graph g = testutil::RandomGraph(rng, 9, 0.4);
    const int chi = graph::ChromaticNumberExact(g);
    for (const int k : {chi - 1, chi, chi + 1}) {
      if (k < 1) continue;
      const auto seq = SymmetrySequence(g, k, heuristic);
      const encode::EncodedColoring enc = EncodeColoring(g, k, spec, seq);
      sat::Solver solver;
      sat::SolveResult result = sat::SolveResult::kUnsat;
      if (solver.AddCnf(enc.cnf)) result = solver.Solve();
      EXPECT_EQ(result == sat::SolveResult::kSat, k >= chi)
          << encoding_name << "/" << ToString(heuristic) << " K=" << k
          << " chi=" << chi;
      if (result == sat::SolveResult::kSat) {
        const auto colors = DecodeColoring(enc, solver.model());
        EXPECT_TRUE(g.IsProperColoring(colors));
        // The restriction itself must hold in the decoded coloring.
        for (std::size_t j = 0; j < seq.size(); ++j) {
          EXPECT_LE(colors[static_cast<std::size_t>(seq[j])],
                    static_cast<int>(j));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Encodings, SymmetrySoundnessTest,
    ::testing::Combine(::testing::ValuesIn(encode::AllEncodingNames()),
                       ::testing::Values(Heuristic::kB1, Heuristic::kS1)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, Heuristic>>&
           info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name + "_" +
             (std::get<1>(info.param) == Heuristic::kB1 ? "b1" : "s1");
    });

TEST(SymmetryTest, RenamingCheckRejectsInvalidColors) {
  Graph g(3);
  g.AddEdge(0, 1);
  const std::vector<VertexId> seq{0, 1};
  EXPECT_FALSE(ColoringRespectsSequenceUpToRenaming({-1, 0, 0}, 3, seq));
  EXPECT_FALSE(ColoringRespectsSequenceUpToRenaming({5, 0, 0}, 3, seq));
}

TEST(SymmetryTest, SequenceNeverExceedsKMinusOne) {
  Rng rng(626);
  const Graph g = testutil::RandomGraph(rng, 30, 0.5);
  for (int k = 2; k <= 10; ++k) {
    for (const Heuristic h : {Heuristic::kB1, Heuristic::kS1}) {
      EXPECT_LE(SymmetrySequence(g, k, h).size(),
                static_cast<std::size_t>(k - 1));
    }
  }
}

TEST(SymmetryTest, NameRoundTrip) {
  EXPECT_EQ(HeuristicFromName("b1"), Heuristic::kB1);
  EXPECT_EQ(HeuristicFromName("s1"), Heuristic::kS1);
  EXPECT_EQ(HeuristicFromName("none"), Heuristic::kNone);
  EXPECT_EQ(HeuristicFromName("-"), Heuristic::kNone);
  EXPECT_STREQ(ToString(Heuristic::kB1), "b1");
  EXPECT_STREQ(ToString(Heuristic::kS1), "s1");
  EXPECT_STREQ(ToString(Heuristic::kNone), "-");
}

}  // namespace
}  // namespace satfr::symmetry
