// Thread-sanitizer stress for the service concurrency surfaces: the
// sharded LRU cache under concurrent lookup/insert/erase with bounds tight
// enough to force constant eviction, the seqlock summary table under
// concurrent publish/probe, and the scheduler under concurrent
// submit/cancel churn. Invariants checked are conservation laws (stats
// balance, exactly-once execution) — the interesting failures here are the
// ones TSan reports, so bodies stay small and hot.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "graph/graph.h"
#include "service/cache.h"
#include "service/routing_service.h"
#include "service/scheduler.h"

namespace satfr::service {
namespace {

CacheKey KeyFor(int i) {
  return CacheKey{static_cast<std::uint64_t>(i) * 7919u, i % 5, "e", "s", ""};
}

TEST(ServiceStress, ShardedCacheSurvivesConcurrentChurn) {
  // 2 shards x 4 entries with a byte bound that also bites: every inserter
  // is constantly evicting what another thread is looking up.
  CacheTierOptions options{/*num_shards=*/2, /*max_entries_per_shard=*/4,
                           /*max_bytes_per_shard=*/64};
  ShardedLruCache<int> cache(options);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 3000;
  constexpr int kKeys = 24;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int k = (i * (t + 1)) % kKeys;
        switch ((i + t) % 4) {
          case 0:
            cache.Insert(KeyFor(k), std::make_shared<const int>(k), 16);
            break;
          case 1:
          case 2: {
            const std::shared_ptr<const int> v = cache.Lookup(KeyFor(k));
            // Eviction must never invalidate a handed-out value.
            if (v != nullptr) EXPECT_EQ(*v, k);
            break;
          }
          case 3:
            cache.Erase(KeyFor(k));
            break;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const CacheTierStats stats = cache.stats();
  EXPECT_LE(stats.entries, 8u);
  EXPECT_LE(stats.bytes, 128u);
  EXPECT_LE(stats.hits, stats.lookups);
  EXPECT_LE(stats.evictions, stats.insertions);
}

TEST(ServiceStress, SummaryTableProbesStayCoherentUnderPublish) {
  VerdictSummaryTable table(/*slots=*/8);
  std::atomic<bool> stop{false};
  constexpr int kKeys = 32;

  std::thread publisher([&] {
    for (int round = 0; round < 2000; ++round) {
      VerdictSummary s;
      const int k = round % kKeys;
      s.key_hash = static_cast<std::uint64_t>(k);
      s.status = k % 3;
      s.width = k;
      s.cold_solve_seconds = k;
      table.Publish(s);
    }
    stop.store(true);
  });
  std::vector<std::thread> probers;
  for (int t = 0; t < 3; ++t) {
    probers.emplace_back([&table, &stop] {
      VerdictSummary out;
      std::uint64_t hits = 0;
      for (int k = 0; !stop.load(); k = (k + 1) % kKeys) {
        if (table.Probe(static_cast<std::uint64_t>(k), &out)) {
          ++hits;
          // A successful probe is internally consistent — the payload
          // words all come from the publish that matched the key.
          EXPECT_EQ(out.key_hash, static_cast<std::uint64_t>(k));
          EXPECT_EQ(out.width, k);
          EXPECT_EQ(out.status, k % 3);
          EXPECT_EQ(out.cold_solve_seconds, static_cast<double>(k));
        }
      }
      (void)hits;
    });
  }
  publisher.join();
  for (std::thread& thread : probers) thread.join();
}

TEST(ServiceStress, SchedulerSubmitCancelChurnConservesJobs) {
  SchedulerOptions options;
  options.num_workers = 3;
  options.deque_capacity = 16;  // small: exercises the inbox backlog path
  JobScheduler scheduler(options);
  constexpr int kSubmitters = 3;
  constexpr int kJobsPerSubmitter = 400;

  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> cancel_wins{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kJobsPerSubmitter; ++i) {
        const auto handle = scheduler.Submit(
            [&executed](const mc::Atomic<bool>&) {
              executed.fetch_add(1, std::memory_order_relaxed);
            },
            /*priority=*/i % 3,
            /*affinity=*/i % 4 == 0 ? t : -1);
        // Every third job gets a racing cancel: either it never runs (the
        // cancel won) or it runs exactly once.
        if (i % 3 == 0 && scheduler.Cancel(handle)) {
          cancel_wins.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  scheduler.WaitIdle();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kSubmitters) * kJobsPerSubmitter;
  EXPECT_EQ(executed.load() + cancel_wins.load(), kTotal);
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(stats.completed, executed.load());
  EXPECT_EQ(stats.cancelled, cancel_wins.load());
}

TEST(ServiceStress, ServiceFrontDoorUnderConcurrentClients) {
  // Tiny caches force the verdict tier to evict while other clients hit
  // it; the request mix repeats enough for real cache traffic.
  ServiceOptions options;
  options.scheduler.num_workers = 2;
  options.verdict_cache = CacheTierOptions{2, 2, 1u << 20};
  options.instance_cache = CacheTierOptions{2, 2, 1u << 20};
  RoutingService svc(options);

  graph::Graph triangle(3);
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(0, 2);
  const auto g = std::make_shared<const graph::Graph>(triangle);

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&svc, &g, &failures, t] {
      for (int i = 0; i < 40; ++i) {
        const int width = 2 + ((i + t) % 2);
        RouteRequest request;
        request.label = "stress";
        request.graph = g;
        request.width = width;
        request.encoding = "muldirect";
        request.symmetry = "none";
        const auto ticket = svc.Submit(std::move(request));
        if (i % 5 == 0) svc.Cancel(ticket);
        const Response& r = svc.Wait(ticket);
        if (r.cancelled) continue;
        const sat::SolveResult expected = width >= 3
                                              ? sat::SolveResult::kSat
                                              : sat::SolveResult::kUnsat;
        if (!r.ok || r.status != expected) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  svc.Drain();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(svc.stats().requests, 120u);
}

}  // namespace
}  // namespace satfr::service
