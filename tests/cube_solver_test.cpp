#include "cube/cube_solver.h"
#include "mc/shim.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/rng.h"
#include "encode/csp_to_cnf.h"
#include "encode/registry.h"
#include "graph/coloring_bounds.h"
#include "graph/graph.h"
#include "sat/clause_sink.h"
#include "test_util.h"

namespace satfr::cube {
namespace {

graph::Graph Cycle(int n) {
  graph::Graph g(n);
  for (graph::VertexId v = 0; v < n; ++v) g.AddEdge(v, (v + 1) % n);
  return g;
}

graph::Graph Complete(int n) {
  graph::Graph g(n);
  for (graph::VertexId u = 0; u < n; ++u) {
    for (graph::VertexId v = u + 1; v < n; ++v) g.AddEdge(u, v);
  }
  return g;
}

CubeSolveOptions Workers(int n) {
  CubeSolveOptions options;
  options.pool.num_workers = n;
  return options;
}

TEST(CubeSolverTest, SatisfiableOddCycle) {
  const graph::Graph g = Cycle(9);
  const CubeSolveResult result = SolveColoringWithCubes(
      g, 3, encode::GetEncoding("muldirect"), symmetry::Heuristic::kS1,
      Workers(2));
  EXPECT_EQ(result.status, sat::SolveResult::kSat);
  EXPECT_TRUE(result.model_validated);
  EXPECT_TRUE(result.error.empty());
  EXPECT_GE(result.winning_cube, 0);
  EXPECT_TRUE(g.IsProperColoring(result.colors));
}

TEST(CubeSolverTest, UnsatisfiableOddCycle) {
  const graph::Graph g = Cycle(9);
  const CubeSolveResult result = SolveColoringWithCubes(
      g, 2, encode::GetEncoding("muldirect"), symmetry::Heuristic::kS1,
      Workers(2));
  EXPECT_EQ(result.status, sat::SolveResult::kUnsat);
  EXPECT_EQ(result.winning_cube, -1);
  EXPECT_TRUE(result.colors.empty());
}

TEST(CubeSolverTest, EmptyCubeSetIsAnUnsatProof) {
  // K4 with 3 colors and the full s1 sequence: the generator prunes every
  // leaf (see CubeGenTest.ConflictPruningDropsAdjacentEqualColors), so the
  // pool receives zero cubes — and must report UNSAT without solving.
  const graph::Graph g = Complete(4);
  const CubeSolveResult result = SolveColoringWithCubes(
      g, 3, encode::GetEncoding("muldirect"), symmetry::Heuristic::kS1,
      Workers(2));
  EXPECT_EQ(result.status, sat::SolveResult::kUnsat);
  EXPECT_EQ(result.num_cubes, 0u);
  EXPECT_EQ(result.cubes_resolved, 0u);
}

TEST(CubeSolverTest, VerdictsMatchExactAcrossEncodingsAndHeuristics) {
  // The headline equivalence sweep: every evaluated encoding x every
  // symmetry heuristic must give the exact verdict on both sides of the
  // chromatic number when solved through the cube pipeline.
  Rng rng(20260808);
  const graph::Graph g = testutil::RandomGraph(rng, 9, 0.45);
  const int chi = graph::ChromaticNumberExact(g);
  ASSERT_GE(chi, 2);
  for (const std::string& name : encode::EvaluatedEncodingNames()) {
    const encode::EncodingSpec& spec = encode::GetEncoding(name);
    for (const symmetry::Heuristic heuristic :
         {symmetry::Heuristic::kNone, symmetry::Heuristic::kB1,
          symmetry::Heuristic::kS1}) {
      CubeSolveOptions options = Workers(2);
      options.gen.target_cubes = 16;
      const CubeSolveResult sat_side =
          SolveColoringWithCubes(g, chi, spec, heuristic, options);
      EXPECT_EQ(sat_side.status, sat::SolveResult::kSat)
          << name << " K=" << chi;
      EXPECT_TRUE(sat_side.model_validated) << name;
      const CubeSolveResult unsat_side =
          SolveColoringWithCubes(g, chi - 1, spec, heuristic, options);
      EXPECT_EQ(unsat_side.status, sat::SolveResult::kUnsat)
          << name << " K=" << chi - 1;
    }
  }
}

TEST(CubeSolverTest, DeterministicSingleWorkerReproducesExactly) {
  Rng rng(77);
  const graph::Graph g = testutil::RandomGraph(rng, 14, 0.4);
  CubeSolveOptions options = Workers(1);
  options.pool.deterministic = true;
  const encode::EncodingSpec& spec =
      encode::GetEncoding("ITE-linear-2+muldirect");
  const CubeSolveResult first =
      SolveColoringWithCubes(g, 4, spec, symmetry::Heuristic::kS1, options);
  const CubeSolveResult second =
      SolveColoringWithCubes(g, 4, spec, symmetry::Heuristic::kS1, options);
  EXPECT_EQ(first.status, second.status);
  EXPECT_EQ(first.colors, second.colors);
  EXPECT_EQ(first.winning_cube, second.winning_cube);
  EXPECT_EQ(first.num_cubes, second.num_cubes);
  EXPECT_EQ(first.cubes_stolen, 0u);
  EXPECT_EQ(second.cubes_stolen, 0u);
}

TEST(CubeSolverTest, PreSetStopCancelsBeforeAnyCube) {
  const graph::Graph g = Cycle(9);
  satfr::mc::Atomic<bool> stop{true};
  CubeSolveOptions options = Workers(2);
  options.stop = &stop;
  const CubeSolveResult result = SolveColoringWithCubes(
      g, 3, encode::GetEncoding("muldirect"), symmetry::Heuristic::kS1,
      options);
  EXPECT_EQ(result.status, sat::SolveResult::kUnknown);
}

TEST(CubeSolverTest, StopMidBatchCancelsWorkers) {
  // K16 at 15 colors with no symmetry breaking is pigeonhole-hard: no
  // worker will finish its cube before the stop lands, so a prompt return
  // with kUnknown demonstrates cancellation reaches solvers mid-cube.
  const graph::Graph g = Complete(16);
  satfr::mc::Atomic<bool> stop{false};
  CubeSolveOptions options = Workers(2);
  options.stop = &stop;
  options.gen.target_cubes = 8;
  std::thread canceller([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
  });
  const CubeSolveResult result = SolveColoringWithCubes(
      g, 15, encode::GetEncoding("muldirect"), symmetry::Heuristic::kNone,
      options);
  canceller.join();
  EXPECT_EQ(result.status, sat::SolveResult::kUnknown);
}

TEST(CubeSolverTest, DeadlineBoundsTheBatch) {
  const graph::Graph g = Complete(16);
  CubeSolveOptions options = Workers(2);
  options.timeout_seconds = 0.1;
  const CubeSolveResult result = SolveColoringWithCubes(
      g, 15, encode::GetEncoding("muldirect"), symmetry::Heuristic::kNone,
      options);
  EXPECT_EQ(result.status, sat::SolveResult::kUnknown);
  EXPECT_LT(result.wall_seconds, 30.0);
}

TEST(CubeSolverTest, PoolSolvesConsecutiveBatchesOnResidentSolvers) {
  // The pool's reason to exist: one loaded formula, many batches (the
  // incremental sweep's shape). Batch 1 carries base assumptions that force
  // two adjacent vertices onto one color — every cube must be refuted
  // without poisoning the solvers — and batch 2 then answers the
  // unrestricted query SAT on the same resident solvers.
  const graph::Graph g = Cycle(9);
  const encode::DomainEncoding domain =
      encode::EncodeDomain(encode::GetEncoding("muldirect"), 3);
  encode::ColoringLayout layout;
  const auto loader = [&](int worker, sat::Solver& solver) {
    sat::SolverSink sink(solver);
    encode::ColoringLayout built = encode::EncodeColoringToSink(
        g, 3, encode::GetEncoding("muldirect"), {}, sink);
    if (worker == 0) layout = built;
    return sink.Finish();
  };
  CubePoolOptions pool_options;
  pool_options.num_workers = 2;
  cube::CubeWorkerPool pool(sat::SolverOptions::SiegeLike(), pool_options,
                            /*numbering_key=*/1, loader);
  ASSERT_TRUE(pool.okay());

  CubeGenOptions gen;
  gen.target_cubes = 9;
  const CubeSet cubes = GenerateCubes(g, domain, 3, {}, gen);
  ASSERT_FALSE(cubes.cubes.empty());

  // Base assumptions: vertices 0 and 1 (adjacent on the cycle) both take
  // color 0 — contradicts the conflict clause in every cube.
  std::vector<sat::Lit> clash;
  for (const graph::VertexId v : {0, 1}) {
    for (const sat::Lit l : domain.value_cubes[0]) {
      clash.push_back(
          sat::Lit::Make(l.var() + v * domain.num_vars, l.negated()));
    }
  }
  const auto batch_clash = pool.SolveBatch(cubes.cubes, clash);
  EXPECT_EQ(batch_clash.status, sat::SolveResult::kUnsat);
  EXPECT_FALSE(batch_clash.refuted);  // assumption-UNSAT, formula fine
  EXPECT_EQ(batch_clash.cubes_resolved, cubes.cubes.size());
  EXPECT_TRUE(pool.okay());

  const auto batch_free = pool.SolveBatch(cubes.cubes, {});
  EXPECT_EQ(batch_free.status, sat::SolveResult::kSat);
  EXPECT_GE(batch_free.winning_cube, 0);
  const std::vector<int> colors =
      encode::DecodeColoring(layout, batch_free.model);
  EXPECT_TRUE(g.IsProperColoring(colors));
  EXPECT_GT(pool.MergedStats().propagations, 0u);
}

TEST(CubeSolverTest, SetupFailureReportsRefuted) {
  const auto broken_loader = [](int, sat::Solver&) { return false; };
  CubePoolOptions pool_options;
  pool_options.num_workers = 2;
  cube::CubeWorkerPool pool(sat::SolverOptions::SiegeLike(), pool_options, 0,
                            broken_loader);
  EXPECT_FALSE(pool.okay());
  const auto batch = pool.SolveBatch({{sat::Lit::Pos(0)}}, {});
  EXPECT_EQ(batch.status, sat::SolveResult::kUnsat);
  EXPECT_TRUE(batch.refuted);
}

TEST(CubeSolverTest, ManyWorkersOnFewCubesStillExact) {
  // More workers than cubes: idle workers must neither wedge termination
  // nor corrupt the verdict.
  const graph::Graph g = Cycle(5);
  CubeSolveOptions options = Workers(8);
  options.gen.target_cubes = 2;
  const CubeSolveResult result = SolveColoringWithCubes(
      g, 3, encode::GetEncoding("muldirect"), symmetry::Heuristic::kS1,
      options);
  EXPECT_EQ(result.status, sat::SolveResult::kSat);
  EXPECT_TRUE(result.model_validated);
}

}  // namespace
}  // namespace satfr::cube
