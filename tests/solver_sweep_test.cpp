// Equivalence sweep across the solver's database features: toggling
// blocking literals, arena GC, learnt tiers, and vivification must never
// change a verdict, and every SAT model must decode to a valid track
// assignment. The sweep runs every evaluated encoding under each symmetry
// heuristic on a small MCNC-derived routing instance, at the minimum
// routable width (SAT side) and one track below it (UNSAT side) — the same
// W / W*-1 pair the paper's experiments use.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "encode/csp_to_cnf.h"
#include "encode/registry.h"
#include "flow/conflict_graph.h"
#include "flow/min_width.h"
#include "netlist/mcnc_suite.h"
#include "route/global_router.h"
#include "sat/solver.h"
#include "symmetry/symmetry.h"

namespace satfr {
namespace {

struct SweepConfig {
  const char* name;
  sat::SolverOptions options;
};

std::vector<SweepConfig> SweepConfigs() {
  std::vector<SweepConfig> configs;
  {
    SweepConfig c{"default", sat::SolverOptions{}};
    configs.push_back(c);
  }
  {
    SweepConfig c{"no-blockers", sat::SolverOptions{}};
    c.options.use_blocking_literals = false;
    configs.push_back(c);
  }
  {
    // The default GC threshold never fires on an instance this small, so
    // the GC leg lowers it until collections actually happen.
    SweepConfig c{"gc-hostile", sat::SolverOptions{}};
    c.options.gc_min_arena_words = 1u << 8;
    configs.push_back(c);
  }
  {
    SweepConfig c{"no-gc-no-tiers", sat::SolverOptions{}};
    c.options.gc_enabled = false;
    c.options.use_tiers = false;
    configs.push_back(c);
  }
  {
    SweepConfig c{"eager-vivify", sat::SolverOptions{}};
    c.options.vivify_interval = 1;
    configs.push_back(c);
  }
  {
    SweepConfig c{"bare", sat::SolverOptions{}};
    c.options.use_blocking_literals = false;
    c.options.gc_enabled = false;
    c.options.use_tiers = false;
    c.options.vivify = false;
    configs.push_back(c);
  }
  return configs;
}

bool ValidColoring(const graph::Graph& g, const std::vector<int>& colors,
                   int num_colors, std::string* error) {
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (colors[static_cast<std::size_t>(v)] < 0 ||
        colors[static_cast<std::size_t>(v)] >= num_colors) {
      *error = "vertex " + std::to_string(v) + " out of range";
      return false;
    }
  }
  for (const auto& [u, v] : g.Edges()) {
    if (colors[static_cast<std::size_t>(u)] ==
        colors[static_cast<std::size_t>(v)]) {
      *error = "conflict edge (" + std::to_string(u) + ", " +
               std::to_string(v) + ") shares a track";
      return false;
    }
  }
  return true;
}

TEST(SolverSweepTest, FeatureTogglesPreserveVerdictsAcrossEncodings) {
  const netlist::McncBenchmark bench = netlist::GenerateMcncBenchmark("tiny");
  const fpga::Arch arch(bench.params.grid_size);
  const fpga::DeviceGraph device(arch);
  const route::GlobalRouting routing =
      route::RouteGlobally(device, bench.netlist, bench.placement);
  const graph::Graph conflict = flow::BuildConflictGraph(arch, routing);

  flow::MinWidthOptions mw_options;
  mw_options.route.timeout_seconds = 120.0;
  const flow::MinWidthResult mw = flow::FindMinimumWidthOnGraph(
      conflict, route::PeakCongestion(arch, routing), mw_options);
  ASSERT_GT(mw.min_width, 1);
  ASSERT_TRUE(mw.proven_optimal);

  const std::vector<SweepConfig> configs = SweepConfigs();
  const symmetry::Heuristic heuristics[] = {symmetry::Heuristic::kNone,
                                            symmetry::Heuristic::kB1,
                                            symmetry::Heuristic::kS1};
  for (const std::string& encoding : encode::EvaluatedEncodingNames()) {
    const encode::EncodingSpec& spec = encode::GetEncoding(encoding);
    for (const symmetry::Heuristic heuristic : heuristics) {
      for (const int width : {mw.min_width, mw.min_width - 1}) {
        const auto sequence =
            symmetry::SymmetrySequence(conflict, width, heuristic);
        const encode::EncodedColoring enc =
            encode::EncodeColoring(conflict, width, spec, sequence);
        const sat::SolveResult expected = width >= mw.min_width
                                              ? sat::SolveResult::kSat
                                              : sat::SolveResult::kUnsat;
        for (const SweepConfig& config : configs) {
          SCOPED_TRACE(encoding + "/" + symmetry::ToString(heuristic) +
                       " width=" + std::to_string(width) + " config=" +
                       config.name);
          sat::Solver solver(config.options);
          sat::SolveResult verdict = sat::SolveResult::kUnsat;
          if (solver.AddCnf(enc.cnf)) verdict = solver.Solve();
          EXPECT_EQ(verdict, expected);
          if (verdict == sat::SolveResult::kSat) {
            const std::vector<int> colors =
                encode::DecodeColoring(enc, solver.model());
            std::string error;
            EXPECT_TRUE(ValidColoring(conflict, colors, width, &error))
                << error;
          }
          std::string invariant_error;
          EXPECT_TRUE(solver.CheckInvariants(&invariant_error))
              << invariant_error;
        }
      }
    }
  }
}

}  // namespace
}  // namespace satfr
