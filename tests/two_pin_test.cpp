#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/mcnc_suite.h"
#include "route/two_pin.h"

namespace satfr::route {
namespace {

TEST(TwoPinTest, StarDecomposition) {
  netlist::Netlist nets;
  for (int i = 0; i < 5; ++i) nets.AddBlock("b" + std::to_string(i));
  nets.AddNet(netlist::Net{"n0", 0, {1, 2, 3}});
  nets.AddNet(netlist::Net{"n1", 4, {0}});
  const auto two_pin = DecomposeToTwoPin(nets);
  ASSERT_EQ(two_pin.size(), 4u);
  // Net order then sink order.
  EXPECT_EQ(two_pin[0].parent, 0);
  EXPECT_EQ(two_pin[0].source, 0);
  EXPECT_EQ(two_pin[0].sink, 1);
  EXPECT_EQ(two_pin[1].sink, 2);
  EXPECT_EQ(two_pin[2].sink, 3);
  EXPECT_EQ(two_pin[3].parent, 1);
  EXPECT_EQ(two_pin[3].source, 4);
  EXPECT_EQ(two_pin[3].sink, 0);
}

TEST(TwoPinTest, EveryTwoPinKeepsItsParentSource) {
  netlist::Netlist nets;
  for (int i = 0; i < 6; ++i) nets.AddBlock("b" + std::to_string(i));
  nets.AddNet(netlist::Net{"n0", 2, {0, 5}});
  nets.AddNet(netlist::Net{"n1", 1, {3, 4}});
  const auto two_pin = DecomposeToTwoPin(nets);
  for (const TwoPinNet& t : two_pin) {
    EXPECT_EQ(t.source, nets.net(t.parent).source);
  }
}

TEST(TwoPinTest, EmptyNetlist) {
  EXPECT_TRUE(DecomposeToTwoPin(netlist::Netlist()).empty());
}

netlist::Placement LinePlacement(const netlist::Netlist& nets, int grid) {
  netlist::Placement placement(grid, nets.num_blocks());
  for (netlist::BlockId b = 0; b < nets.num_blocks(); ++b) {
    placement.Place(b, b % grid, b / grid);
  }
  return placement;
}

TEST(TwoPinChainTest, WalksNearestNeighborOrder) {
  netlist::Netlist nets;
  for (int i = 0; i < 4; ++i) nets.AddBlock("b" + std::to_string(i));
  // Blocks placed on a line at x = 0,1,2,3 (y=0). Net from block 0 to
  // sinks {3, 1, 2}: the chain must visit 1, then 2, then 3.
  nets.AddNet(netlist::Net{"n", 0, {3, 1, 2}});
  const auto placement = LinePlacement(nets, 4);
  const auto chain = DecomposeToTwoPinChain(nets, placement);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0].source, 0);
  EXPECT_EQ(chain[0].sink, 1);
  EXPECT_EQ(chain[1].source, 1);
  EXPECT_EQ(chain[1].sink, 2);
  EXPECT_EQ(chain[2].source, 2);
  EXPECT_EQ(chain[2].sink, 3);
  for (const TwoPinNet& t : chain) {
    EXPECT_EQ(t.parent, 0);
  }
}

TEST(TwoPinChainTest, SameCountAsStar) {
  const netlist::McncBenchmark bench = netlist::GenerateMcncBenchmark("tiny");
  const auto star = DecomposeToTwoPin(bench.netlist);
  const auto chain =
      DecomposeToTwoPinChain(bench.netlist, bench.placement);
  EXPECT_EQ(star.size(), chain.size());
}

TEST(TwoPinChainTest, EverySinkReachedExactlyOnce) {
  const netlist::McncBenchmark bench =
      netlist::GenerateMcncBenchmark("9symml");
  const auto chain =
      DecomposeToTwoPinChain(bench.netlist, bench.placement);
  // Group by parent and check the chain visits each sink once, starting at
  // the net source.
  for (netlist::NetId id = 0; id < bench.netlist.num_nets(); ++id) {
    const netlist::Net& net = bench.netlist.net(id);
    std::vector<netlist::BlockId> visited;
    netlist::BlockId at = net.source;
    for (const TwoPinNet& t : chain) {
      if (t.parent != id) continue;
      EXPECT_EQ(t.source, at) << "net " << id << " chain broken";
      visited.push_back(t.sink);
      at = t.sink;
    }
    std::vector<netlist::BlockId> expected = net.sinks;
    std::sort(expected.begin(), expected.end());
    std::sort(visited.begin(), visited.end());
    EXPECT_EQ(visited, expected) << "net " << id;
  }
}

TEST(TwoPinChainTest, NameRoundTrip) {
  EXPECT_STREQ(ToString(Decomposition::kStar), "star");
  EXPECT_STREQ(ToString(Decomposition::kChain), "chain");
}

TEST(TwoPinTest, CountMatchesConnections) {
  netlist::Netlist nets;
  for (int i = 0; i < 8; ++i) nets.AddBlock("b" + std::to_string(i));
  nets.AddNet(netlist::Net{"n0", 0, {1, 2, 3, 4, 5, 6, 7}});
  EXPECT_EQ(DecomposeToTwoPin(nets).size(),
            static_cast<std::size_t>(nets.NumTwoPinConnections()));
}

}  // namespace
}  // namespace satfr::route
