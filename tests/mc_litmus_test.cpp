// Litmus suite for the concurrency model checker (src/mc) and the
// lock-free layers it guards: the Chase-Lev deque, the clause-exchange
// seqlock ring, and the sharded metrics registry.
//
// Two kinds of tests live here:
//
//   * Checker-validation tests (#ifdef SATFR_MODEL_CHECK): known-bad
//     protocols the checker MUST catch (a racy counter, relaxed message
//     passing, relaxed store buffering, a lock-order deadlock) and
//     known-good ones it must NOT flag (mutex counter, release/acquire
//     message passing, seq_cst store buffering). These pin the memory
//     model from both sides — too strong and real bugs slip through, too
//     weak and every litmus below would false-positive.
//
//   * Property litmus tests on the real production structures: no cube
//     lost or popped twice, no torn clause delivered plus the collect
//     conservation ledger, and metrics snapshot totals conserved. These
//     compile and run in BOTH build modes: under SATFR_MODEL_CHECK the
//     body is explored across interleavings; in a normal build mc::Check
//     degrades to a single real-thread run, so the suite doubles as a
//     smoke test and the shim's passthrough stays exercised.
//
// tests/mc_mutation_test.cpp is the adversarial counterpart: it rebuilds
// the deque with a deliberately weakened memory_order and asserts the
// exact litmus bodies used here start failing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cube/work_queue.h"
#include "mc/model_check.h"
#include "mc/shim.h"
#include "obs/metrics.h"
#include "sat/clause_exchange.h"
#include "service/cache.h"

namespace satfr {
namespace {

#if defined(SATFR_MODEL_CHECK)

// ---------------------------------------------------------------------------
// Checker validation: known-bad protocols must be caught...
// ---------------------------------------------------------------------------

// Non-atomic-style counter (load; add; store, all relaxed): two increments
// can resolve to 1. The canonical lost-update race.
void RacyCounterBody() {
  auto x = std::make_shared<mc::Atomic<int>>(0);
  mc::Thread a([x] { x->store(x->load(std::memory_order_relaxed) + 1,
                              std::memory_order_relaxed); });
  mc::Thread b([x] { x->store(x->load(std::memory_order_relaxed) + 1,
                              std::memory_order_relaxed); });
  a.Join();
  b.Join();
  MC_CHECK(x->load(std::memory_order_relaxed) == 2, "lost update");
}

TEST(McCheckerValidation, CatchesRacyCounter) {
  mc::ModelCheckOptions opts;
  opts.max_exhaustive_schedules = 2000;
  opts.random_schedules = 0;
  const mc::ModelCheckResult res = mc::Check(RacyCounterBody, opts);
  ASSERT_FALSE(res.ok) << "checker missed the lost-update race";
  EXPECT_NE(res.failure.find("lost update"), std::string::npos) << res.failure;
  ASSERT_FALSE(res.failing_trail.empty());

  // The printed decision trail must replay to the identical failure.
  mc::ModelCheckOptions replay;
  replay.replay_trail = res.failing_trail;
  const mc::ModelCheckResult again = mc::Check(RacyCounterBody, replay);
  ASSERT_FALSE(again.ok) << "failing trail replayed clean";
  EXPECT_EQ(again.failure, res.failure);
  EXPECT_EQ(again.schedules_explored, 1u);
}

TEST(McCheckerValidation, RandomPhaseFailureReplaysFromSeed) {
  // Skip the exhaustive phase entirely so the failure is found by the
  // random walk and carries a seed.
  mc::ModelCheckOptions opts;
  opts.max_exhaustive_schedules = 0;
  opts.random_schedules = 500;
  opts.random_seed = 11;
  const mc::ModelCheckResult res = mc::Check(RacyCounterBody, opts);
  ASSERT_FALSE(res.ok) << "random walk missed the lost-update race";
  ASSERT_NE(res.failing_seed, 0u);

  mc::ModelCheckOptions replay;
  replay.replay_seed = res.failing_seed;
  const mc::ModelCheckResult again = mc::Check(RacyCounterBody, replay);
  ASSERT_FALSE(again.ok) << "failing seed replayed clean";
  EXPECT_EQ(again.failure, res.failure);
}

TEST(McCheckerValidation, CatchesRelaxedMessagePassing) {
  // data published relaxed, flag read relaxed: the reader may observe the
  // flag without the data.
  const mc::ModelCheckResult res = mc::Check([] {
    auto data = std::make_shared<mc::Atomic<int>>(0);
    auto flag = std::make_shared<mc::Atomic<int>>(0);
    mc::Thread writer([=] {
      data->store(42, std::memory_order_relaxed);
      flag->store(1, std::memory_order_relaxed);
    });
    mc::Thread reader([=] {
      if (flag->load(std::memory_order_relaxed) == 1) {
        MC_CHECK(data->load(std::memory_order_relaxed) == 42,
                 "flag observed without data");
      }
    });
    writer.Join();
    reader.Join();
  });
  ASSERT_FALSE(res.ok) << "checker missed the relaxed message-passing race";
  EXPECT_NE(res.failure.find("flag observed without data"), std::string::npos);
}

TEST(McCheckerValidation, CatchesRelaxedStoreBuffering) {
  // Classic SB: both threads store then load the other's location, all
  // relaxed — r1 == r2 == 0 is reachable (both loads stale).
  const mc::ModelCheckResult res = mc::Check([] {
    auto x = std::make_shared<mc::Atomic<int>>(0);
    auto y = std::make_shared<mc::Atomic<int>>(0);
    auto r1 = std::make_shared<int>(-1);
    auto r2 = std::make_shared<int>(-1);
    mc::Thread a([=] {
      x->store(1, std::memory_order_relaxed);
      *r1 = y->load(std::memory_order_relaxed);
    });
    mc::Thread b([=] {
      y->store(1, std::memory_order_relaxed);
      *r2 = x->load(std::memory_order_relaxed);
    });
    a.Join();
    b.Join();
    MC_CHECK(*r1 == 1 || *r2 == 1, "store buffering: both loads saw 0");
  });
  ASSERT_FALSE(res.ok) << "checker missed relaxed store buffering";
}

TEST(McCheckerValidation, CatchesLockOrderDeadlock) {
  const mc::ModelCheckResult res = mc::Check([] {
    auto m1 = std::make_shared<mc::Mutex>();
    auto m2 = std::make_shared<mc::Mutex>();
    mc::Thread a([=] {
      mc::MutexLock l1(*m1);
      mc::MutexLock l2(*m2);
    });
    mc::Thread b([=] {
      mc::MutexLock l2(*m2);
      mc::MutexLock l1(*m1);
    });
    a.Join();
    b.Join();
  });
  ASSERT_FALSE(res.ok) << "checker missed the AB/BA deadlock";
  EXPECT_NE(res.failure.find("deadlock"), std::string::npos) << res.failure;
}

// ---------------------------------------------------------------------------
// ...and known-good protocols must pass (the model must not be too weak).
// ---------------------------------------------------------------------------

TEST(McCheckerValidation, MutexCounterHolds) {
  mc::ModelCheckOptions opts;
  opts.max_exhaustive_schedules = 5000;
  opts.random_schedules = 100;
  const mc::ModelCheckResult res = mc::Check(
      [] {
        auto mu = std::make_shared<mc::Mutex>();
        auto count = std::make_shared<int>(0);
        mc::Thread a([=] {
          mc::MutexLock lock(*mu);
          ++*count;
        });
        mc::Thread b([=] {
          mc::MutexLock lock(*mu);
          ++*count;
        });
        a.Join();
        b.Join();
        MC_CHECK(*count == 2, "mutex-guarded increments lost");
      },
      opts);
  EXPECT_TRUE(res.ok) << res.FailureSummary();
  EXPECT_TRUE(res.exhaustive_complete);
}

TEST(McCheckerValidation, ReleaseAcquireMessagePassingHolds) {
  const mc::ModelCheckResult res = mc::Check([] {
    auto data = std::make_shared<mc::Atomic<int>>(0);
    auto flag = std::make_shared<mc::Atomic<int>>(0);
    mc::Thread writer([=] {
      data->store(42, std::memory_order_relaxed);
      flag->store(1, std::memory_order_release);
    });
    mc::Thread reader([=] {
      if (flag->load(std::memory_order_acquire) == 1) {
        MC_CHECK(data->load(std::memory_order_relaxed) == 42,
                 "acquire read the flag but not the data");
      }
    });
    writer.Join();
    reader.Join();
  });
  EXPECT_TRUE(res.ok) << res.FailureSummary();
  EXPECT_TRUE(res.exhaustive_complete);
}

TEST(McCheckerValidation, SeqCstStoreBufferingHolds) {
  // With seq_cst stores and loads the single total order forbids
  // r1 == r2 == 0 — exactly what the deque's owner/thief fences rely on.
  const mc::ModelCheckResult res = mc::Check([] {
    auto x = std::make_shared<mc::Atomic<int>>(0);
    auto y = std::make_shared<mc::Atomic<int>>(0);
    auto r1 = std::make_shared<int>(-1);
    auto r2 = std::make_shared<int>(-1);
    mc::Thread a([=] {
      x->store(1, std::memory_order_seq_cst);
      *r1 = y->load(std::memory_order_seq_cst);
    });
    mc::Thread b([=] {
      y->store(1, std::memory_order_seq_cst);
      *r2 = x->load(std::memory_order_seq_cst);
    });
    a.Join();
    b.Join();
    MC_CHECK(*r1 == 1 || *r2 == 1, "seq_cst store buffering violated");
  });
  EXPECT_TRUE(res.ok) << res.FailureSummary();
  EXPECT_TRUE(res.exhaustive_complete);
}

TEST(McCheckerValidation, SeqCstFenceStoreBufferingHolds) {
  // Same shape as PopBottom/Steal: relaxed accesses ordered only by
  // seq_cst fences between the store and the load.
  const mc::ModelCheckResult res = mc::Check([] {
    auto x = std::make_shared<mc::Atomic<int>>(0);
    auto y = std::make_shared<mc::Atomic<int>>(0);
    auto r1 = std::make_shared<int>(-1);
    auto r2 = std::make_shared<int>(-1);
    mc::Thread a([=] {
      x->store(1, std::memory_order_relaxed);
      mc::Fence(std::memory_order_seq_cst);
      *r1 = y->load(std::memory_order_relaxed);
    });
    mc::Thread b([=] {
      y->store(1, std::memory_order_relaxed);
      mc::Fence(std::memory_order_seq_cst);
      *r2 = x->load(std::memory_order_relaxed);
    });
    a.Join();
    b.Join();
    MC_CHECK(*r1 == 1 || *r2 == 1, "fence-ordered store buffering violated");
  });
  EXPECT_TRUE(res.ok) << res.FailureSummary();
  EXPECT_TRUE(res.exhaustive_complete);
}

#endif  // SATFR_MODEL_CHECK

// ---------------------------------------------------------------------------
// Chase-Lev deque: no cube lost, no cube popped twice.
// ---------------------------------------------------------------------------

// Root pushes `items` before spawning (thread creation gives both workers
// happens-before over the pushes), then the owner pops until empty while
// `num_thieves` thieves steal. Every item must surface exactly once.
void DequeExactlyOnceBody(int num_thieves) {
  constexpr std::int64_t kItems[] = {101, 102, 103};
  constexpr int kCount = 3;
  auto dq = std::make_shared<cube::WorkStealingDeque>(4);
  for (const std::int64_t item : kItems) dq->PushBottom(item);

  auto taken = std::make_shared<std::vector<std::vector<std::int64_t>>>(
      static_cast<std::size_t>(1 + num_thieves));
  mc::Thread owner([dq, taken] {
    std::int64_t item;
    while (dq->PopBottom(&item)) (*taken)[0].push_back(item);
  });
  std::vector<std::unique_ptr<mc::Thread>> thieves;
  for (int t = 0; t < num_thieves; ++t) {
    thieves.push_back(std::make_unique<mc::Thread>([dq, taken, t] {
      std::int64_t item;
      for (;;) {
        if (dq->Steal(&item)) {
          (*taken)[static_cast<std::size_t>(1 + t)].push_back(item);
          continue;
        }
        // A failed steal is either empty or a lost race; only stop once
        // the deque also looks empty. Empty() is racy, but a stale verdict
        // here costs only another loop round, never an item.
        if (dq->Empty()) break;
        mc::Yield();
      }
    }));
  }
  owner.Join();
  for (auto& thief : thieves) thief->Join();

  std::vector<std::int64_t> all;
  for (const auto& per_thread : *taken) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  MC_CHECK(all.size() == kCount, "cube lost or popped twice");
  for (int i = 0; i < kCount; ++i) {
    MC_CHECK(all[static_cast<std::size_t>(i)] == kItems[i],
             "wrong cube multiset");
  }
}

TEST(McDequeLitmus, ExactlyOnceOwnerVsThief) {
  mc::ModelCheckOptions opts;
  opts.max_exhaustive_schedules = 4000;
  opts.random_schedules = 300;
  const mc::ModelCheckResult res =
      mc::Check([] { DequeExactlyOnceBody(1); }, opts);
  EXPECT_TRUE(res.ok) << res.FailureSummary();
}

TEST(McDequeLitmus, ExactlyOnceTwoThieves) {
  mc::ModelCheckOptions opts;
  opts.max_preemptions = 1;  // thief-vs-thief CAS races still reachable
  opts.max_stale_reads = 2;
  opts.max_exhaustive_schedules = 4000;
  opts.random_schedules = 200;
  const mc::ModelCheckResult res =
      mc::Check([] { DequeExactlyOnceBody(2); }, opts);
  EXPECT_TRUE(res.ok) << res.FailureSummary();
}

// Healthy-build counterpart of the steal-bottom mutation body: the owner
// pushes during the run, so the thief's acquire load of bottom (not the
// spawn) is what publishes the slot writes. Must hold here; must break in
// tests/mc_mutation_test.cpp when that load is weakened.
TEST(McDequeLitmus, ExactlyOnceOwnerPushesDuringRun) {
  mc::ModelCheckOptions opts;
  opts.max_exhaustive_schedules = 4000;
  opts.random_schedules = 300;
  const mc::ModelCheckResult res = mc::Check(
      [] {
        auto dq = std::make_shared<cube::WorkStealingDeque>(4);
        auto taken = std::make_shared<std::vector<std::vector<std::int64_t>>>(
            std::size_t{2});
        mc::Thread owner([dq, taken] {
          dq->PushBottom(42);
          dq->PushBottom(43);
          std::int64_t item;
          while (dq->PopBottom(&item)) (*taken)[0].push_back(item);
        });
        mc::Thread thief([dq, taken] {
          std::int64_t item;
          for (;;) {
            if (dq->Steal(&item)) {
              (*taken)[1].push_back(item);
              continue;
            }
            if (dq->Empty()) break;
            mc::Yield();
          }
        });
        owner.Join();
        thief.Join();
        std::vector<std::int64_t> all;
        for (const auto& per_thread : *taken) {
          all.insert(all.end(), per_thread.begin(), per_thread.end());
        }
        std::sort(all.begin(), all.end());
        MC_CHECK(all.size() == 2, "cube lost or popped twice");
        MC_CHECK(all[0] == 42 && all[1] == 43, "wrong cube multiset");
      },
      opts);
  EXPECT_TRUE(res.ok) << res.FailureSummary();
}

// ---------------------------------------------------------------------------
// Clause-exchange ring: no torn clause delivered, ledger conserved.
// ---------------------------------------------------------------------------

// Publisher pushes kClauses two-literal clauses through a capacity-2 ring
// (so later publishes overwrite earlier slots mid-run) while the collector
// drains concurrently. Literal pattern: clause i is {+v, -(v + 999)} with
// v = i + 1 and lbd = v, so any torn mix of two publishes breaks either
// the var correlation or the lbd correlation.
void ExchangeNoTornBody() {
  constexpr int kClauses = 3;
  auto ex = std::make_shared<sat::ClauseExchange>(2);
  const int pub = ex->Register(/*full_key=*/7, /*unit_key=*/7);
  const int col = ex->Register(/*full_key=*/7, /*unit_key=*/7);
  MC_CHECK(pub == 0 && col == 1, "registration ids");

  mc::Thread publisher([ex, pub] {
    for (int i = 0; i < kClauses; ++i) {
      const sat::Var v = i + 1;
      const sat::Clause clause = {sat::Lit::Pos(v), sat::Lit::Neg(v + 999)};
      ex->Publish(pub, clause, /*lbd=*/static_cast<std::uint32_t>(v));
    }
  });
  auto got = std::make_shared<std::vector<sat::SharedClause>>();
  mc::Thread collector([ex, col, got] {
    for (int round = 0; round < kClauses + 1; ++round) {
      ex->Collect(col, got.get());
      mc::Yield();
    }
  });
  publisher.Join();
  collector.Join();
  // Post-join sweeps are sequential (join gives the root happens-before
  // over everything): the collector's cursor picks up whatever the
  // concurrent rounds parked behind, and the publisher's collect must see
  // only its own clauses and skip every one.
  ex->Collect(col, got.get());
  std::vector<sat::SharedClause> self_view;
  ex->Collect(pub, &self_view);
  MC_CHECK(self_view.empty(), "publisher imported its own clause");

  std::set<sat::Var> seen;
  for (const sat::SharedClause& shared : *got) {
    MC_CHECK(shared.lits.size() == 2, "torn clause: wrong size");
    const sat::Var v = shared.lits[0].var();
    MC_CHECK(v >= 1 && v <= kClauses, "torn clause: var out of range");
    MC_CHECK(!shared.lits[0].negated(), "torn clause: wrong sign on lit 0");
    MC_CHECK(shared.lits[1].var() == v + 999,
             "torn clause: literals from different publishes");
    MC_CHECK(shared.lits[1].negated(), "torn clause: wrong sign on lit 1");
    MC_CHECK(shared.lbd == static_cast<std::uint32_t>(v),
             "torn clause: lbd from a different publish");
    MC_CHECK(seen.insert(v).second, "clause delivered twice");
  }

  // Reader-side conservation: every cursor step is accounted exactly once.
  const sat::ClauseExchange::Totals t = ex->totals();
  MC_CHECK(t.cursor_advanced == t.collected + t.torn_reads + t.self_skipped +
                                    t.incompatible_skipped +
                                    t.eviction_skipped,
           "collect conservation ledger violated");
  MC_CHECK(t.published == static_cast<std::uint64_t>(kClauses),
           "publish count");
}

TEST(McExchangeLitmus, NoTornClauseDeliveredAndLedgerConserved) {
  mc::ModelCheckOptions opts;
  opts.max_preemptions = 2;
  opts.max_stale_reads = 2;
  opts.max_exhaustive_schedules = 3000;
  opts.random_schedules = 200;
  const mc::ModelCheckResult res = mc::Check(ExchangeNoTornBody, opts);
  EXPECT_TRUE(res.ok) << res.FailureSummary();
}

// Sequential eviction sweep: publish past the ring capacity, then collect.
// Exercises the wholesale lap-behind jump and the per-ticket eviction skip
// arms of the ledger without scheduler interleaving.
TEST(McExchangeLitmus, EvictionSkipsStayOnLedger) {
  const mc::ModelCheckResult res = mc::Check([] {
    sat::ClauseExchange ex(2);
    const int pub = ex.Register(3, 3);
    const int col = ex.Register(3, 3);
    for (int i = 0; i < 6; ++i) {
      const sat::Var v = 10 + i;
      const sat::Clause clause = {sat::Lit::Pos(v), sat::Lit::Neg(v + 100)};
      ex.Publish(pub, clause, 2);
    }
    std::vector<sat::SharedClause> got;
    ex.Collect(col, &got);
    MC_CHECK(!got.empty(), "nothing survived the ring");
    const sat::ClauseExchange::Totals t = ex.totals();
    MC_CHECK(t.eviction_skipped > 0, "eviction sweep left no ledger trace");
    MC_CHECK(t.cursor_advanced == t.collected + t.torn_reads +
                                      t.self_skipped + t.incompatible_skipped +
                                      t.eviction_skipped,
             "collect conservation ledger violated");
  });
  EXPECT_TRUE(res.ok) << res.FailureSummary();
}

// ---------------------------------------------------------------------------
// Metrics registry: snapshot totals conserved across sharded writers.
// ---------------------------------------------------------------------------

TEST(McMetricsLitmus, SnapshotTotalsConserved) {
  mc::ModelCheckOptions opts;
  // Shard creation stores through every slot, so schedules here are long;
  // keep the enumeration tight and lean on the random walk.
  opts.max_preemptions = 1;
  opts.max_stale_reads = 1;
  opts.max_exhaustive_schedules = 300;
  opts.random_schedules = 60;
  const mc::ModelCheckResult res = mc::Check(
      [] {
        auto reg = std::make_shared<obs::MetricsRegistry>();
        const obs::MetricId count = reg->Counter("litmus.count");
        const obs::MetricId hist = reg->Histogram("litmus.hist");
        const obs::MetricId gauge = reg->Gauge("litmus.gauge");
        mc::Thread a([=] {
          reg->Add(count, 2);
          reg->Observe(hist, 3);
          reg->SetGauge(gauge, 5);
        });
        mc::Thread b([=] {
          reg->Add(count, 3);
          reg->Observe(hist, 100);
          reg->SetGauge(gauge, 7);
        });
        a.Join();
        b.Join();

        const obs::MetricsSnapshot snap = reg->Snapshot();
        const obs::MetricSnapshot* c = snap.Find("litmus.count");
        MC_CHECK(c != nullptr && c->value == 5, "counter adds lost");
        const obs::MetricSnapshot* h = snap.Find("litmus.hist");
        MC_CHECK(h != nullptr && h->count == 2, "histogram observation lost");
        MC_CHECK(h->buckets[obs::MetricsRegistry::BucketFor(3)] == 1 &&
                     h->buckets[obs::MetricsRegistry::BucketFor(100)] == 1,
                 "histogram bucket misfiled");
        const obs::MetricSnapshot* g = snap.Find("litmus.gauge");
        MC_CHECK(g != nullptr && (g->gauge == 5 || g->gauge == 7),
                 "gauge is not last-write-wins");
      },
      opts);
  EXPECT_TRUE(res.ok) << res.FailureSummary();
}

// ---------------------------------------------------------------------------
// Service verdict-cache seqlock: no torn and no stale-generation read.
// ---------------------------------------------------------------------------

// Writer publishes two self-correlated summaries through one slot while a
// reader probes concurrently. Payload pattern: publish i carries
// key_hash = 100 + i, status = i, width = 10 * i — any mix of words from
// two publishes (torn read) or a generation paired with older words
// (stale read, the PUBLISH_RELEASE mutation) breaks a correlation. The
// exact body must FAIL in tests/mc_cache_mutation_test.cpp.
void SeqlockNoTornNoStaleBody() {
  auto slot =
      std::make_shared<service::SeqlockedSlot<service::VerdictSummary>>();
  mc::Thread writer([slot] {
    for (std::int32_t i = 1; i <= 2; ++i) {
      service::VerdictSummary s;
      s.key_hash = 100 + static_cast<std::uint64_t>(i);
      s.status = i;
      s.width = 10 * i;
      s.cold_solve_seconds = i;
      slot->Publish(s);
    }
  });
  mc::Thread reader([slot] {
    service::VerdictSummary out;
    for (int round = 0; round < 3; ++round) {
      if (slot->TryRead(&out)) {
        const std::int32_t i = out.status;
        MC_CHECK(i == 1 || i == 2, "stale read: unpublished payload");
        MC_CHECK(out.key_hash == 100 + static_cast<std::uint64_t>(i),
                 "torn read: key from a different publish");
        MC_CHECK(out.width == 10 * i,
                 "torn read: width from a different publish");
        MC_CHECK(out.cold_solve_seconds == static_cast<double>(i),
                 "torn read: timing from a different publish");
      }
      mc::Yield();
    }
  });
  writer.Join();
  reader.Join();
  // Join gives the root happens-before over the final publish: the read
  // must now succeed and carry the second summary in full.
  service::VerdictSummary final_read;
  MC_CHECK(slot->TryRead(&final_read), "settled slot unreadable");
  MC_CHECK(final_read.status == 2 && final_read.key_hash == 102 &&
               final_read.width == 20,
           "settled slot lost the last publish");
}

TEST(McCacheLitmus, SeqlockDeliversNoTornOrStaleSummary) {
  mc::ModelCheckOptions opts;
  opts.max_preemptions = 2;
  opts.max_stale_reads = 2;
  opts.max_exhaustive_schedules = 4000;
  opts.random_schedules = 300;
  const mc::ModelCheckResult res = mc::Check(SeqlockNoTornNoStaleBody, opts);
  EXPECT_TRUE(res.ok) << res.FailureSummary();
}

// The full front door: serialized publishers (the table's publish mutex)
// against a lock-free prober. A true probe must return the probed key's
// own coherent payload even while the colliding slot is being overwritten.
TEST(McCacheLitmus, SummaryTableProbeNeverLiesUnderOverwrite) {
  mc::ModelCheckOptions opts;
  opts.max_preemptions = 2;
  opts.max_stale_reads = 2;
  opts.max_exhaustive_schedules = 3000;
  opts.random_schedules = 200;
  const mc::ModelCheckResult res = mc::Check(
      [] {
        // One slot: both keys collide, so every publish overwrites.
        auto table = std::make_shared<service::VerdictSummaryTable>(1);
        mc::Thread writer_a([table] {
          service::VerdictSummary s;
          s.key_hash = 8;
          s.status = 1;
          s.width = 18;
          table->Publish(s);
        });
        mc::Thread writer_b([table] {
          service::VerdictSummary s;
          s.key_hash = 9;
          s.status = 2;
          s.width = 29;
          table->Publish(s);
        });
        mc::Thread prober([table] {
          service::VerdictSummary out;
          for (int round = 0; round < 2; ++round) {
            if (table->Probe(8, &out)) {
              MC_CHECK(out.key_hash == 8 && out.status == 1 &&
                           out.width == 18,
                       "probe returned another key's payload");
            }
            mc::Yield();
          }
        });
        writer_a.Join();
        writer_b.Join();
        prober.Join();
      },
      opts);
  EXPECT_TRUE(res.ok) << res.FailureSummary();
}

// ---------------------------------------------------------------------------
// Passthrough contract: outside SATFR_MODEL_CHECK builds Check still runs
// the body once and reports MC_CHECK failures instead of aborting.
// ---------------------------------------------------------------------------

TEST(McPassthrough, CheckReportsBodyFailure) {
  const mc::ModelCheckResult res =
      mc::Check([] { MC_CHECK(1 + 1 == 3, "arithmetic is broken"); });
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("arithmetic is broken"), std::string::npos);
}

TEST(McPassthrough, CheckPassesCleanBody) {
  const mc::ModelCheckResult res = mc::Check([] {
    mc::Atomic<int> x{0};
    mc::Thread t([&] { x.store(1, std::memory_order_release); });
    t.Join();
    MC_CHECK(x.load(std::memory_order_acquire) == 1, "join lost the store");
  });
  EXPECT_TRUE(res.ok) << res.FailureSummary();
}

}  // namespace
}  // namespace satfr
