// Fuzz-style robustness tests: every text parser in the library must
// either accept or cleanly reject arbitrary mangled input — never crash,
// hang, or return an object violating its invariants.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "graph/dimacs_col.h"
#include "netlist/netlist_io.h"
#include "route/routing_io.h"
#include "sat/dimacs.h"

namespace satfr {
namespace {

// Random printable garbage with structure-ish tokens sprinkled in.
std::string RandomGarbage(Rng& rng, std::size_t length) {
  static const char* const kTokens[] = {
      "p",   "cnf", "edge",  "e",     "0",     "1",    "-1",
      "99",  "-99", "grid",  "block", "net",   "route", ":",
      "H(0,0)", "V(1,1)", "satfr_netlist", "satfr_routing", "\n", " ",
  };
  std::string out;
  for (std::size_t i = 0; i < length; ++i) {
    if (rng.NextBool(0.7)) {
      out += kTokens[rng.NextBelow(sizeof(kTokens) / sizeof(kTokens[0]))];
      out += ' ';
    } else {
      out += static_cast<char>(32 + rng.NextBelow(95));
    }
    if (rng.NextBool(0.15)) out += '\n';
  }
  return out;
}

// Mutates a valid document: deletes, duplicates, or scrambles lines.
std::string Mutate(Rng& rng, const std::string& valid) {
  std::vector<std::string> lines;
  std::istringstream in(valid);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  const int mutations = static_cast<int>(1 + rng.NextBelow(4));
  for (int m = 0; m < mutations && !lines.empty(); ++m) {
    const std::size_t at = rng.NextBelow(lines.size());
    switch (rng.NextBelow(3)) {
      case 0:
        lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(at));
        break;
      case 1:
        lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at),
                     lines[rng.NextBelow(lines.size())]);
        break;
      default:
        if (!lines[at].empty()) {
          lines[at][rng.NextBelow(lines[at].size())] =
              static_cast<char>(32 + rng.NextBelow(95));
        }
        break;
    }
  }
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

TEST(ParserFuzzTest, DimacsCnfSurvivesGarbage) {
  Rng rng(0xFADE);
  for (int i = 0; i < 300; ++i) {
    const auto parsed =
        sat::ParseDimacsString(RandomGarbage(rng, 60));
    if (parsed) {
      // Accepted documents must be internally consistent.
      for (const sat::Clause& clause : parsed->clauses()) {
        for (const sat::Lit l : clause) {
          EXPECT_GE(l.var(), 0);
          EXPECT_LT(l.var(), parsed->num_vars());
        }
      }
    }
  }
}

TEST(ParserFuzzTest, DimacsColSurvivesGarbage) {
  Rng rng(0xBEEF);
  for (int i = 0; i < 300; ++i) {
    const auto parsed =
        graph::ParseDimacsColString(RandomGarbage(rng, 60));
    if (parsed) {
      for (const auto& [u, v] : parsed->Edges()) {
        EXPECT_GE(u, 0);
        EXPECT_LT(v, parsed->num_vertices());
      }
    }
  }
}

TEST(ParserFuzzTest, NetlistSurvivesMutation) {
  const char* valid =
      "satfr_netlist 1\n"
      "circuit fuzz\n"
      "grid 4\n"
      "block a 0 0\n"
      "block b 1 2\n"
      "block c 3 3\n"
      "net n0 a b\n"
      "net n1 c a b\n";
  Rng rng(0xFEED);
  for (int i = 0; i < 300; ++i) {
    const auto parsed =
        netlist::ParsePlacedNetlistString(Mutate(rng, valid));
    if (parsed) {
      EXPECT_TRUE(parsed->netlist.Validate());
      EXPECT_TRUE(parsed->placement.CoversNetlist(parsed->netlist));
    }
  }
}

TEST(ParserFuzzTest, RoutingSurvivesMutation) {
  const char* valid =
      "satfr_routing 1\n"
      "grid 3\n"
      "route 0 0 1 : H(0,0) H(1,0)\n"
      "route 1 2 3 : V(0,0) V(0,1)\n";
  Rng rng(0xACED);
  const fpga::Arch arch(3);
  for (int i = 0; i < 300; ++i) {
    const auto parsed =
        route::ParseGlobalRoutingString(Mutate(rng, valid));
    if (parsed && parsed->grid_size == 3) {
      for (const auto& segments : parsed->routing.routes) {
        for (const fpga::SegmentIndex seg : segments) {
          EXPECT_GE(seg, 0);
          EXPECT_LT(seg, arch.num_segments());
        }
      }
    }
  }
}

}  // namespace
}  // namespace satfr
