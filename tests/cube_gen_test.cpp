#include "cube/cube_gen.h"

#include <gtest/gtest.h>

#include "encode/registry.h"
#include "graph/graph.h"
#include "symmetry/symmetry.h"

namespace satfr::cube {
namespace {

encode::DomainEncoding Domain(const char* encoding, int colors) {
  return encode::EncodeDomain(encode::GetEncoding(encoding), colors);
}

TEST(CubeGenTest, EdgelessGraphSplitsToTargetExactly) {
  // No conflicts and no sequence: each branch vertex multiplies the leaf
  // count by the full color count, so 3 colors cross a target of 27 at
  // exactly depth 3 with no pruning.
  graph::Graph g(10);
  const encode::DomainEncoding domain = Domain("muldirect", 3);
  CubeGenOptions options;
  options.target_cubes = 27;
  const CubeSet cubes = GenerateCubes(g, domain, 3, {}, options);
  EXPECT_EQ(cubes.cubes.size(), 27u);
  EXPECT_EQ(cubes.branch_vertices.size(), 3u);
  EXPECT_EQ(cubes.pruned_conflict, 0u);
  EXPECT_EQ(cubes.pruned_symmetry, 0u);
}

TEST(CubeGenTest, BranchVertexCapIsRespected) {
  graph::Graph g(10);
  const encode::DomainEncoding domain = Domain("muldirect", 3);
  CubeGenOptions options;
  options.target_cubes = 1 << 20;  // unreachable: the cap cuts first
  options.max_branch_vertices = 2;
  const CubeSet cubes = GenerateCubes(g, domain, 3, {}, options);
  EXPECT_EQ(cubes.branch_vertices.size(), 2u);
  EXPECT_EQ(cubes.cubes.size(), 9u);
}

TEST(CubeGenTest, HighestDegreeVertexBranchesFirst) {
  // Star: the center has degree 4, every leaf degree 1.
  graph::Graph g(5);
  for (graph::VertexId v = 1; v < 5; ++v) g.AddEdge(0, v);
  const encode::DomainEncoding domain = Domain("muldirect", 3);
  CubeGenOptions options;
  options.target_cubes = 2;
  const CubeSet cubes = GenerateCubes(g, domain, 3, {}, options);
  ASSERT_FALSE(cubes.branch_vertices.empty());
  EXPECT_EQ(cubes.branch_vertices[0], 0);
}

TEST(CubeGenTest, SequenceVerticesBranchFirstWithClippedDomains) {
  // Sequence vertex i only enumerates colors < i+1 (its restriction
  // clauses forbid the rest); the skipped colors are counted, not emitted.
  graph::Graph g(2);
  const encode::DomainEncoding domain = Domain("muldirect", 3);
  const std::vector<graph::VertexId> sequence = {0, 1};
  const CubeSet cubes = GenerateCubes(g, domain, 3, sequence);
  EXPECT_EQ(cubes.cubes.size(), 2u);  // 1 (v0: color 0) x 2 (v1: colors 0,1)
  ASSERT_EQ(cubes.branch_vertices.size(), 2u);
  EXPECT_EQ(cubes.branch_vertices[0], 0);
  EXPECT_EQ(cubes.branch_vertices[1], 1);
  EXPECT_EQ(cubes.pruned_symmetry, 3u);  // v0 skipped 2 colors, v1 skipped 1
}

TEST(CubeGenTest, ConflictPruningDropsAdjacentEqualColors) {
  // Triangle with 2 colors and a full symmetry sequence: v0 takes color 0,
  // v1 the remaining color 1, and both colors of v2 collide with a
  // neighbor. The cube set prunes to empty — which is exactly the UNSAT
  // proof (K3 is not 2-colorable), so an empty set must be reported, not
  // treated as an error.
  graph::Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  const encode::DomainEncoding domain = Domain("muldirect", 2);
  const std::vector<graph::VertexId> sequence = {0, 1, 2};
  const CubeSet cubes = GenerateCubes(g, domain, 2, sequence);
  EXPECT_TRUE(cubes.cubes.empty());
  EXPECT_GT(cubes.pruned_conflict, 0u);
}

TEST(CubeGenTest, CubeLiteralsLieInBranchVertexBlocks) {
  graph::Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  for (const char* name : {"muldirect", "log", "ITE-linear-2+muldirect"}) {
    const encode::DomainEncoding domain = Domain(name, 4);
    CubeGenOptions options;
    options.target_cubes = 16;
    const CubeSet cubes = GenerateCubes(g, domain, 4, {}, options);
    ASSERT_FALSE(cubes.cubes.empty()) << name;
    for (const std::vector<sat::Lit>& cube : cubes.cubes) {
      ASSERT_FALSE(cube.empty()) << name;
      for (const sat::Lit& lit : cube) {
        bool in_some_block = false;
        for (const graph::VertexId v : cubes.branch_vertices) {
          const sat::Var lo = v * domain.num_vars;
          if (lit.var() >= lo && lit.var() < lo + domain.num_vars) {
            in_some_block = true;
          }
        }
        EXPECT_TRUE(in_some_block) << name;
      }
    }
  }
}

TEST(CubeGenTest, GenerationIsDeterministic) {
  graph::Graph g(12);
  for (graph::VertexId v = 0; v + 1 < 12; ++v) g.AddEdge(v, v + 1);
  g.AddEdge(0, 6);
  g.AddEdge(3, 9);
  const encode::DomainEncoding domain = Domain("muldirect", 3);
  const auto sequence = symmetry::SymmetrySequence(g, 3,
                                                  symmetry::Heuristic::kS1);
  const CubeSet first = GenerateCubes(g, domain, 3, sequence);
  const CubeSet second = GenerateCubes(g, domain, 3, sequence);
  EXPECT_EQ(first.cubes, second.cubes);
  EXPECT_EQ(first.branch_vertices, second.branch_vertices);
  EXPECT_EQ(first.pruned_conflict, second.pruned_conflict);
  EXPECT_EQ(first.pruned_symmetry, second.pruned_symmetry);
}

}  // namespace
}  // namespace satfr::cube
