// Shared helpers for satfr tests: random formula / graph generators.
#pragma once

#include "common/rng.h"
#include "graph/graph.h"
#include "sat/cnf.h"

namespace satfr::testutil {

/// Random CNF with exactly `num_clauses` clauses of length 1..max_len over
/// `num_vars` variables (duplicate literals possible — parsers and solvers
/// must cope).
inline sat::Cnf RandomCnf(Rng& rng, int num_vars, int num_clauses,
                          int max_len = 3) {
  sat::Cnf cnf(num_vars);
  for (int c = 0; c < num_clauses; ++c) {
    sat::Clause clause;
    const int len = static_cast<int>(1 + rng.NextBelow(
                                             static_cast<std::uint64_t>(max_len)));
    for (int i = 0; i < len; ++i) {
      clause.push_back(sat::Lit::Make(
          static_cast<sat::Var>(
              rng.NextBelow(static_cast<std::uint64_t>(num_vars))),
          rng.NextBool(0.5)));
    }
    cnf.AddClause(std::move(clause));
  }
  return cnf;
}

/// Erdos-Renyi G(n, p) graph.
inline graph::Graph RandomGraph(Rng& rng, int num_vertices,
                                double edge_probability) {
  graph::Graph g(num_vertices);
  for (graph::VertexId u = 0; u < num_vertices; ++u) {
    for (graph::VertexId v = u + 1; v < num_vertices; ++v) {
      if (rng.NextBool(edge_probability)) g.AddEdge(u, v);
    }
  }
  return g;
}

/// The pigeonhole principle PHP(holes+1, holes) as CNF — classically hard
/// UNSAT family for resolution-based solvers.
inline sat::Cnf PigeonholeCnf(int holes) {
  const int pigeons = holes + 1;
  sat::Cnf cnf(pigeons * holes);
  const auto var = [holes](int p, int h) { return p * holes + h; };
  for (int p = 0; p < pigeons; ++p) {
    sat::Clause alo;
    for (int h = 0; h < holes; ++h) alo.push_back(sat::Lit::Pos(var(p, h)));
    cnf.AddClause(std::move(alo));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.AddBinary(sat::Lit::Neg(var(p1, h)), sat::Lit::Neg(var(p2, h)));
      }
    }
  }
  return cnf;
}

}  // namespace satfr::testutil
