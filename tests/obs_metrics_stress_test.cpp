// TSan stress for the metrics registry's sharded hot path: many writer
// threads hammer counters and histograms (first touch of the registry races
// with shard creation) while a reader thread snapshots concurrently. The
// assertions are deliberately light — the point of this binary is running
// it under ThreadSanitizer in CI, where any lock/ordering bug in the shard
// cache or snapshot summation is a hard failure.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "mc/shim.h"

namespace satfr::obs {
namespace {

TEST(MetricsStressTest, ConcurrentShardedUpdatesWithSnapshots) {
  MetricsRegistry registry;
  constexpr int kWriters = 8;
  constexpr int kIterations = 20000;
  const MetricId counter = registry.Counter("stress.counter");
  const MetricId histogram = registry.Histogram("stress.histogram");
  const MetricId gauge = registry.Gauge("stress.gauge");

  satfr::mc::Atomic<bool> stop{false};
  std::thread reader([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snapshot = registry.Snapshot();
      // Monotone sanity only: a mid-flight snapshot sees partial sums.
      if (const MetricSnapshot* h = snapshot.Find("stress.histogram")) {
        std::uint64_t total = 0;
        for (const std::uint64_t b : h->buckets) total += b;
        EXPECT_EQ(total, h->count);
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&registry, counter, histogram, gauge, t] {
      for (int i = 0; i < kIterations; ++i) {
        registry.Add(counter);
        registry.Observe(histogram,
                         static_cast<std::uint64_t>(i) << (t % 8));
        if ((i & 1023) == 0) registry.SetGauge(gauge, t);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricSnapshot* c = snapshot.Find("stress.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, static_cast<std::uint64_t>(kWriters) * kIterations);
  const MetricSnapshot* h = snapshot.Find("stress.histogram");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<std::uint64_t>(kWriters) * kIterations);
}

TEST(MetricsStressTest, ConcurrentRegistrationAndUpdates) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Everyone registers the same names (idempotent path under
      // contention) plus one private name, then updates both.
      const MetricId shared = registry.Counter("reg.shared");
      const MetricId mine =
          registry.Counter("reg.private." + std::to_string(t));
      for (int i = 0; i < 5000; ++i) {
        registry.Add(shared);
        registry.Add(mine);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricSnapshot* shared = snapshot.Find("reg.shared");
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->value, static_cast<std::uint64_t>(kThreads) * 5000);
  for (int t = 0; t < kThreads; ++t) {
    const MetricSnapshot* mine =
        snapshot.Find("reg.private." + std::to_string(t));
    ASSERT_NE(mine, nullptr);
    EXPECT_EQ(mine->value, 5000u);
  }
}

TEST(MetricsStressTest, GlobalRegistryConcurrentAccess) {
  MetricsRegistry& global = GlobalMetrics();
  const MetricId counter = global.Counter("stress.global");
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&global, counter] {
      for (int i = 0; i < 10000; ++i) global.Add(counter);
    });
  }
  for (std::thread& t : threads) t.join();
  const MetricsSnapshot snapshot = global.Snapshot();
  const MetricSnapshot* c = snapshot.Find("stress.global");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(c->value, static_cast<std::uint64_t>(kThreads) * 10000);
}

}  // namespace
}  // namespace satfr::obs
