// End-to-end detailed-routing tests: netlist -> global route -> SAT ->
// validated track assignment, across encodings and solver presets.
#include <gtest/gtest.h>

#include "encode/registry.h"
#include "flow/conflict_graph.h"
#include "graph/coloring_bounds.h"
#include "flow/detailed_router.h"
#include "flow/track_checker.h"
#include "netlist/mcnc_suite.h"
#include "route/global_router.h"

namespace satfr::flow {
namespace {

using fpga::Arch;
using fpga::DeviceGraph;

struct RoutedBenchmark {
  netlist::McncBenchmark bench;
  Arch arch;
  route::GlobalRouting routing;
  int peak = 0;

  explicit RoutedBenchmark(const std::string& name)
      : bench(netlist::GenerateMcncBenchmark(name)),
        arch(bench.params.grid_size) {
    const DeviceGraph device(arch);
    routing = route::RouteGlobally(device, bench.netlist, bench.placement);
    peak = route::PeakCongestion(arch, routing);
  }
};

const RoutedBenchmark& Tiny() {
  static const RoutedBenchmark* const kTiny = new RoutedBenchmark("tiny");
  return *kTiny;
}

const RoutedBenchmark& NineSymml() {
  static const RoutedBenchmark* const kBench =
      new RoutedBenchmark("9symml");
  return *kBench;
}

TEST(DetailedRouterTest, SatAtGenerousWidthAndTracksValidate) {
  const RoutedBenchmark& rb = Tiny();
  const graph::Graph conflict = BuildConflictGraph(rb.arch, rb.routing);
  const int width = static_cast<int>(conflict.MaxDegree()) + 1;
  DetailedRouteOptions options;
  const DetailedRouteResult result =
      RouteDetailed(rb.arch, rb.routing, width, options);
  ASSERT_EQ(result.status, sat::SolveResult::kSat);
  std::string error;
  EXPECT_TRUE(ValidateTrackAssignment(rb.arch, rb.routing, result.tracks,
                                      width, &error))
      << error;
  EXPECT_GT(result.cnf_vars, 0);
  EXPECT_GT(result.cnf_clauses, 0u);
  EXPECT_EQ(result.conflict_vertices, conflict.num_vertices());
  EXPECT_EQ(result.conflict_edges, conflict.num_edges());
}

TEST(DetailedRouterTest, UnsatBelowCongestionBound) {
  const RoutedBenchmark& rb = Tiny();
  ASSERT_GE(rb.peak, 2) << "fixture must have congestion to be meaningful";
  DetailedRouteOptions options;
  const DetailedRouteResult result =
      RouteDetailed(rb.arch, rb.routing, rb.peak - 1, options);
  EXPECT_EQ(result.status, sat::SolveResult::kUnsat);
  EXPECT_TRUE(result.tracks.empty());
}

TEST(DetailedRouterTest, TimeBreakdownIsPopulated) {
  const RoutedBenchmark& rb = Tiny();
  const DetailedRouteResult result =
      RouteDetailed(rb.arch, rb.routing, rb.peak + 2);
  EXPECT_GE(result.coloring_seconds, 0.0);
  EXPECT_GE(result.encode_seconds, 0.0);
  EXPECT_GE(result.solve_seconds, 0.0);
  EXPECT_NEAR(result.TotalSeconds(),
              result.coloring_seconds + result.encode_seconds +
                  result.solve_seconds,
              1e-12);
}

// Every encoding and both heuristics must agree on SAT/UNSAT for the same
// instance — the cross-encoding equisatisfiability invariant of DESIGN.md.
class EncodingAgreementTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EncodingAgreementTest, AgreesOnRoutableAndUnroutable) {
  const RoutedBenchmark& rb = NineSymml();
  const graph::Graph conflict = BuildConflictGraph(rb.arch, rb.routing);
  // DSATUR gives a width that is guaranteed routable; peak congestion - 1
  // is guaranteed unroutable (clique bound).
  const int routable_width =
      graph::NumColorsUsed(graph::DsaturColoring(conflict));
  DetailedRouteOptions options;
  options.encoding = encode::GetEncoding(GetParam());
  options.timeout_seconds = 60.0;
  for (const symmetry::Heuristic h :
       {symmetry::Heuristic::kNone, symmetry::Heuristic::kB1,
        symmetry::Heuristic::kS1}) {
    options.heuristic = h;
    const DetailedRouteResult routable =
        RouteDetailedOnGraph(conflict, routable_width, options);
    EXPECT_EQ(routable.status, sat::SolveResult::kSat)
        << GetParam() << "/" << symmetry::ToString(h);
    const DetailedRouteResult unroutable =
        RouteDetailedOnGraph(conflict, rb.peak - 1, options);
    EXPECT_EQ(unroutable.status, sat::SolveResult::kUnsat)
        << GetParam() << "/" << symmetry::ToString(h);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, EncodingAgreementTest,
    ::testing::ValuesIn(encode::AllEncodingNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name;
    });

TEST(DetailedRouterTest, BothSolverPresetsAgree) {
  const RoutedBenchmark& rb = Tiny();
  const graph::Graph conflict = BuildConflictGraph(rb.arch, rb.routing);
  const int routable_width =
      graph::NumColorsUsed(graph::DsaturColoring(conflict));
  for (const bool siege : {true, false}) {
    DetailedRouteOptions options;
    options.solver = siege ? sat::SolverOptions::SiegeLike()
                           : sat::SolverOptions::MiniSatLike();
    const DetailedRouteResult sat_result =
        RouteDetailed(rb.arch, rb.routing, routable_width, options);
    EXPECT_EQ(sat_result.status, sat::SolveResult::kSat);
    if (rb.peak >= 2) {
      const DetailedRouteResult unsat_result =
          RouteDetailed(rb.arch, rb.routing, rb.peak - 1, options);
      EXPECT_EQ(unsat_result.status, sat::SolveResult::kUnsat);
    }
  }
}

TEST(DetailedRouterTest, UnsatProofVerifies) {
  const RoutedBenchmark& rb = Tiny();
  ASSERT_GE(rb.peak, 2);
  DetailedRouteOptions options;
  options.verify_unsat_proof = true;
  const DetailedRouteResult result =
      RouteDetailed(rb.arch, rb.routing, rb.peak - 1, options);
  ASSERT_EQ(result.status, sat::SolveResult::kUnsat);
  EXPECT_TRUE(result.proof_verified);
}

TEST(DetailedRouterTest, ProofFieldsUntouchedWithoutFlag) {
  const RoutedBenchmark& rb = Tiny();
  const DetailedRouteResult result =
      RouteDetailed(rb.arch, rb.routing, rb.peak - 1);
  EXPECT_FALSE(result.proof_verified);
  EXPECT_EQ(result.proof_clauses, 0u);
}

TEST(DetailedRouterTest, DefaultPathStreamsEncoderIntoSolver) {
  const RoutedBenchmark& rb = Tiny();
  const DetailedRouteResult result =
      RouteDetailed(rb.arch, rb.routing, rb.peak + 1);
  EXPECT_NE(result.status, sat::SolveResult::kUnknown);
  EXPECT_TRUE(result.streamed_encode);
  EXPECT_EQ(result.encode_stats.TotalEmitted(), result.cnf_clauses);
}

TEST(DetailedRouterTest, SelfcheckAndProofVerificationMaterialize) {
  const RoutedBenchmark& rb = Tiny();
  DetailedRouteOptions options;
  options.selfcheck = true;
  const DetailedRouteResult checked =
      RouteDetailed(rb.arch, rb.routing, rb.peak + 1, options);
  EXPECT_NE(checked.status, sat::SolveResult::kUnknown);
  EXPECT_FALSE(checked.streamed_encode);

  ASSERT_GE(rb.peak, 2);
  DetailedRouteOptions proof_options;
  proof_options.verify_unsat_proof = true;
  const DetailedRouteResult proved =
      RouteDetailed(rb.arch, rb.routing, rb.peak - 1, proof_options);
  ASSERT_EQ(proved.status, sat::SolveResult::kUnsat);
  EXPECT_FALSE(proved.streamed_encode);
}

TEST(DetailedRouterTest, InlineSimplifyAgreesWithPlainStreaming) {
  const RoutedBenchmark& rb = Tiny();
  const graph::Graph conflict = BuildConflictGraph(rb.arch, rb.routing);
  const int width = graph::NumColorsUsed(graph::DsaturColoring(conflict));
  DetailedRouteOptions options;
  options.inline_simplify = true;
  const DetailedRouteResult sat_result =
      RouteDetailed(rb.arch, rb.routing, width, options);
  EXPECT_EQ(sat_result.status, sat::SolveResult::kSat);
  EXPECT_TRUE(sat_result.streamed_encode);
  std::string error;
  EXPECT_TRUE(ValidateTrackAssignment(rb.arch, rb.routing, sat_result.tracks,
                                      width, &error))
      << error;
  // Reported clause counts stay pre-simplification (Table 1 invariant).
  EXPECT_EQ(sat_result.encode_stats.TotalEmitted(), sat_result.cnf_clauses);

  if (rb.peak >= 2) {
    const DetailedRouteResult unsat_result =
        RouteDetailed(rb.arch, rb.routing, rb.peak - 1, options);
    EXPECT_EQ(unsat_result.status, sat::SolveResult::kUnsat);
  }
}

TEST(DetailedRouterTest, ZeroTimeoutMeansUnlimited) {
  const RoutedBenchmark& rb = Tiny();
  DetailedRouteOptions options;
  options.timeout_seconds = 0.0;
  const DetailedRouteResult result =
      RouteDetailed(rb.arch, rb.routing, rb.peak + 1, options);
  EXPECT_NE(result.status, sat::SolveResult::kUnknown);
}

}  // namespace
}  // namespace satfr::flow
