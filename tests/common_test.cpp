#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace satfr {
namespace {

// ----------------------------------------------------------------- Rng

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBelow(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolRespectsExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolRoughlyMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(17);
  const auto perm = rng.Permutation(50);
  std::set<std::uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(RngTest, PermutationOfZeroIsEmpty) {
  Rng rng(17);
  EXPECT_TRUE(rng.Permutation(0).empty());
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(23);
  Rng forked = a.Fork();
  // The fork must not replay the parent's stream.
  Rng parent_copy(23);
  (void)parent_copy.Fork();
  int equal = 0;
  for (int i = 0; i < 16; ++i) {
    if (forked() == a()) ++equal;
  }
  EXPECT_LT(equal, 8);
}

TEST(StableHashTest, DeterministicAndSpreads) {
  EXPECT_EQ(StableHash64("alu2"), StableHash64("alu2"));
  EXPECT_NE(StableHash64("alu2"), StableHash64("alu4"));
  EXPECT_NE(StableHash64(""), StableHash64("a"));
}

// ------------------------------------------------------------- strings

TEST(StringsTest, SplitWhitespaceBasics) {
  const auto tokens = SplitWhitespace("  p cnf  3 \t 4\n");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "p");
  EXPECT_EQ(tokens[1], "cnf");
  EXPECT_EQ(tokens[2], "3");
  EXPECT_EQ(tokens[3], "4");
}

TEST(StringsTest, SplitWhitespaceEmpty) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   \t\n").empty());
}

TEST(StringsTest, SplitCharPreservesEmptyFields) {
  const auto fields = SplitChar("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  hello \t"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("p cnf", "p"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

TEST(StringsTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(1234567.0, 0), "1,234,567");
  EXPECT_EQ(FormatWithCommas(999.0, 0), "999");
  EXPECT_EQ(FormatWithCommas(1000.25, 2), "1,000.25");
  EXPECT_EQ(FormatWithCommas(-1234.5, 1), "-1,234.5");
}

TEST(StringsTest, FormatSecondsPaperStyle) {
  // Matches Table 2's rendering: decimals below 1000 s, commas above.
  EXPECT_EQ(FormatSecondsPaperStyle(0.12), "0.12");
  EXPECT_EQ(FormatSecondsPaperStyle(12.83), "12.83");
  EXPECT_EQ(FormatSecondsPaperStyle(999.994), "999.99");
  EXPECT_EQ(FormatSecondsPaperStyle(1531524.0), "1,531,524");
  EXPECT_EQ(FormatSecondsPaperStyle(1054417.0), "1,054,417");
}

// ----------------------------------------------------------- stopwatch

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(watch.Millis(), 15.0);
  watch.Reset();
  EXPECT_LT(watch.Millis(), 15.0);
}

TEST(DeadlineTest, DefaultNeverExpires) {
  const Deadline d;
  EXPECT_TRUE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(std::isinf(d.RemainingSeconds()));
}

TEST(DeadlineTest, ExpiresAfterInterval) {
  const Deadline d = Deadline::After(0.02);
  EXPECT_FALSE(d.IsInfinite());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, NonPositiveExpiresImmediately) {
  EXPECT_TRUE(Deadline::After(0.0).Expired());
  EXPECT_TRUE(Deadline::After(-1.0).Expired());
}

// ------------------------------------------------------------- logging

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SATFR_LOG(kDebug) << "suppressed";  // must not crash
  SetLogLevel(original);
}

}  // namespace
}  // namespace satfr
