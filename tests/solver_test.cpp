#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "sat/brute_force.h"
#include "mc/shim.h"
#include "sat/clause_exchange.h"
#include "sat/solver.h"
#include "test_util.h"

namespace satfr::sat {
namespace {

SolveResult SolveCnf(const Cnf& cnf, Solver* solver) {
  if (!solver->AddCnf(cnf)) return SolveResult::kUnsat;
  return solver->Solve();
}

TEST(SolverTest, EmptyFormulaIsSat) {
  Solver solver;
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
}

TEST(SolverTest, SingleUnit) {
  Solver solver;
  const Var v = solver.NewVar();
  ASSERT_TRUE(solver.AddClause({Lit::Pos(v)}));
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
  EXPECT_TRUE(solver.ModelValue(Lit::Pos(v)));
}

TEST(SolverTest, ContradictoryUnits) {
  Solver solver;
  const Var v = solver.NewVar();
  ASSERT_TRUE(solver.AddClause({Lit::Pos(v)}));
  EXPECT_FALSE(solver.AddClause({Lit::Neg(v)}));
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
  EXPECT_FALSE(solver.okay());
}

TEST(SolverTest, EmptyClauseIsUnsat) {
  Solver solver;
  solver.NewVar();
  EXPECT_FALSE(solver.AddClause({}));
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
}

TEST(SolverTest, DuplicateAndTautologicalClauses) {
  Solver solver;
  const Var a = solver.NewVar();
  const Var b = solver.NewVar();
  ASSERT_TRUE(solver.AddClause({Lit::Pos(a), Lit::Neg(a)}));  // tautology
  ASSERT_TRUE(solver.AddClause({Lit::Pos(a), Lit::Pos(a), Lit::Pos(b)}));
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
}

TEST(SolverTest, SimpleImplicationChain) {
  // (~x0 | x1) (~x1 | x2) ... (x0) forces all true.
  Solver solver;
  const int n = 20;
  for (int i = 0; i < n; ++i) solver.NewVar();
  ASSERT_TRUE(solver.AddClause({Lit::Pos(0)}));
  for (int i = 0; i + 1 < n; ++i) {
    ASSERT_TRUE(solver.AddClause({Lit::Neg(i), Lit::Pos(i + 1)}));
  }
  ASSERT_EQ(solver.Solve(), SolveResult::kSat);
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(solver.ModelValue(Lit::Pos(i)));
  }
}

TEST(SolverTest, XorChainUnsat) {
  // x0, xor chain equalities forcing x_{n-1}, plus ~x_{n-1}: UNSAT.
  Solver solver;
  const int n = 12;
  for (int i = 0; i < n; ++i) solver.NewVar();
  ASSERT_TRUE(solver.AddClause({Lit::Pos(0)}));
  for (int i = 0; i + 1 < n; ++i) {
    // x_i == x_{i+1}
    ASSERT_TRUE(solver.AddClause({Lit::Neg(i), Lit::Pos(i + 1)}));
    ASSERT_TRUE(solver.AddClause({Lit::Pos(i), Lit::Neg(i + 1)}));
  }
  // Level-0 propagation already forces x_{n-1}; the solver may detect the
  // contradiction right here (AddClause returns false) — Solve must then
  // report UNSAT either way.
  (void)solver.AddClause({Lit::Neg(n - 1)});
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
}

TEST(SolverTest, PigeonholeUnsat) {
  for (int holes : {3, 4, 5, 6}) {
    Solver solver;
    EXPECT_EQ(SolveCnf(testutil::PigeonholeCnf(holes), &solver),
              SolveResult::kUnsat)
        << "PHP(" << holes + 1 << "," << holes << ")";
  }
}

TEST(SolverTest, PigeonholeSatWhenEnoughHoles) {
  // pigeons == holes: satisfiable (permutation).
  const int n = 5;
  Cnf cnf(n * n);
  const auto var = [n](int p, int h) { return p * n + h; };
  for (int p = 0; p < n; ++p) {
    Clause alo;
    for (int h = 0; h < n; ++h) alo.push_back(Lit::Pos(var(p, h)));
    cnf.AddClause(std::move(alo));
  }
  for (int h = 0; h < n; ++h) {
    for (int p1 = 0; p1 < n; ++p1) {
      for (int p2 = p1 + 1; p2 < n; ++p2) {
        cnf.AddBinary(Lit::Neg(var(p1, h)), Lit::Neg(var(p2, h)));
      }
    }
  }
  Solver solver;
  ASSERT_EQ(SolveCnf(cnf, &solver), SolveResult::kSat);
  EXPECT_TRUE(cnf.IsSatisfiedBy(solver.model()));
}

TEST(SolverTest, ModelSatisfiesFormula) {
  Rng rng(31337);
  for (int i = 0; i < 30; ++i) {
    const Cnf cnf = testutil::RandomCnf(rng, 30, 100, 4);
    Solver solver;
    if (SolveCnf(cnf, &solver) == SolveResult::kSat) {
      EXPECT_TRUE(cnf.IsSatisfiedBy(solver.model()));
    }
  }
}

// Cross-check CDCL against plain DPLL on many random instances, for both
// option presets. This is the core soundness test of the engine.
class SolverCrossCheckTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(SolverCrossCheckTest, AgreesWithDpll) {
  const auto [seed, siege_like] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  for (int i = 0; i < 40; ++i) {
    // Around the 3-SAT phase transition so both outcomes are frequent.
    const int vars = 12 + static_cast<int>(rng.NextBelow(8));
    const int clauses = static_cast<int>(vars * 4.2);
    const Cnf cnf = testutil::RandomCnf(rng, vars, clauses, 3);
    const bool expected = SolveByDpll(cnf).has_value();
    Solver solver(siege_like ? SolverOptions::SiegeLike()
                             : SolverOptions::MiniSatLike());
    const SolveResult result = SolveCnf(cnf, &solver);
    ASSERT_NE(result, SolveResult::kUnknown);
    EXPECT_EQ(result == SolveResult::kSat, expected)
        << "seed=" << seed << " iteration=" << i;
    if (result == SolveResult::kSat) {
      EXPECT_TRUE(cnf.IsSatisfiedBy(solver.model()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomFormulas, SolverCrossCheckTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_siege" : "_minisat");
    });

TEST(SolverTest, DeadlineReturnsUnknown) {
  // A hard pigeonhole instance cannot finish in ~zero time.
  Solver solver;
  ASSERT_TRUE(solver.AddCnf(testutil::PigeonholeCnf(11)));
  EXPECT_EQ(solver.Solve(Deadline::After(0.001)), SolveResult::kUnknown);
}

TEST(SolverTest, StopFlagAbortsSearch) {
  Solver solver;
  ASSERT_TRUE(solver.AddCnf(testutil::PigeonholeCnf(11)));
  satfr::mc::Atomic<bool> stop{false};
  std::thread stopper([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    stop.store(true);
  });
  const SolveResult result = solver.Solve(Deadline(), &stop);
  stopper.join();
  EXPECT_EQ(result, SolveResult::kUnknown);
}

TEST(SolverTest, SolveTwiceIsConsistent) {
  Rng rng(77);
  const Cnf cnf = testutil::RandomCnf(rng, 15, 60);
  Solver solver;
  const SolveResult first = SolveCnf(cnf, &solver);
  const SolveResult second = solver.Solve();
  EXPECT_EQ(first, second);
}

TEST(SolverTest, StatsArePopulated) {
  Solver solver;
  ASSERT_TRUE(solver.AddCnf(testutil::PigeonholeCnf(6)));
  ASSERT_EQ(solver.Solve(), SolveResult::kUnsat);
  const SolverStats& stats = solver.stats();
  EXPECT_GT(stats.conflicts, 0u);
  EXPECT_GT(stats.decisions, 0u);
  EXPECT_GT(stats.propagations, 0u);
  EXPECT_GT(stats.learned, 0u);
}

TEST(SolverTest, LongRunExercisesReduceAndGc) {
  // Large enough to trigger clause-database reduction and arena GC.
  Solver solver;
  ASSERT_TRUE(solver.AddCnf(testutil::PigeonholeCnf(8)));
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
  EXPECT_GT(solver.stats().learned, 1000u);
}

TEST(SolverTest, ToStringNames) {
  EXPECT_STREQ(ToString(SolveResult::kSat), "SAT");
  EXPECT_STREQ(ToString(SolveResult::kUnsat), "UNSAT");
  EXPECT_STREQ(ToString(SolveResult::kUnknown), "UNKNOWN");
}

TEST(SolverTest, AddCnfAllocatesVariables) {
  Cnf cnf(5);
  cnf.AddBinary(Lit::Pos(3), Lit::Pos(4));
  Solver solver;
  ASSERT_TRUE(solver.AddCnf(cnf));
  EXPECT_EQ(solver.num_vars(), 5);
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
}

TEST(SolverTest, SatisfiedClauseAtLevelZeroIsDropped) {
  Solver solver;
  const Var a = solver.NewVar();
  const Var b = solver.NewVar();
  ASSERT_TRUE(solver.AddClause({Lit::Pos(a)}));
  // Already satisfied by the unit above; must be a no-op.
  ASSERT_TRUE(solver.AddClause({Lit::Pos(a), Lit::Pos(b)}));
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
}

TEST(SolverTest, BinaryLayerPropagatesChains) {
  // x0 -> x1 -> x2 -> x3 -> x4, all through the binary layer (the binaries
  // must precede the unit so they are not strengthened away at add time).
  Cnf cnf(5);
  for (int v = 0; v + 1 < 5; ++v) {
    cnf.AddBinary(Lit::Neg(v), Lit::Pos(v + 1));
  }
  cnf.AddUnit(Lit::Pos(0));
  Solver solver;
  ASSERT_TRUE(solver.AddCnf(cnf));
  EXPECT_EQ(solver.stats().binary_propagations, 4u);
  ASSERT_EQ(solver.Solve(), SolveResult::kSat);
  for (int v = 0; v < 5; ++v) {
    EXPECT_TRUE(solver.model()[static_cast<std::size_t>(v)]);
  }
}

TEST(SolverTest, ConflictAnalysisThroughBinaryReasons) {
  // (a | b)(a | ~b)(~a | c)(~a | ~c): UNSAT, and every implication and
  // conflict the solver ever sees has a binary reason.
  Solver solver;
  const Var a = solver.NewVar();
  const Var b = solver.NewVar();
  const Var c = solver.NewVar();
  ASSERT_TRUE(solver.AddClause({Lit::Pos(a), Lit::Pos(b)}));
  ASSERT_TRUE(solver.AddClause({Lit::Pos(a), Lit::Neg(b)}));
  ASSERT_TRUE(solver.AddClause({Lit::Neg(a), Lit::Pos(c)}));
  ASSERT_TRUE(solver.AddClause({Lit::Neg(a), Lit::Neg(c)}));
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
  EXPECT_GT(solver.stats().conflicts, 0u);
  EXPECT_GT(solver.stats().binary_propagations, 0u);
}

TEST(SolverTest, GcKeepsBinaryReasonsIntact) {
  // Pigeonhole formulas are dominated by binary at-most-one clauses, so a
  // long run exercises arena GC while binary-tagged reasons sit on the
  // trail across many decision levels.
  Solver solver;
  ASSERT_TRUE(solver.AddCnf(testutil::PigeonholeCnf(8)));
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
  EXPECT_GT(solver.stats().gc_runs, 0u);
  EXPECT_GT(solver.stats().binary_propagations, 0u);
}

TEST(SolverTest, ImportsUnitFromExchange) {
  ClauseExchange exchange;
  const int publisher = exchange.Register(42, 42);
  const int subscriber = exchange.Register(42, 42);
  Solver solver;
  const Var a = solver.NewVar();
  const Var b = solver.NewVar();
  ASSERT_TRUE(solver.AddClause({Lit::Pos(a), Lit::Pos(b)}));
  solver.SetClauseExchange(&exchange, subscriber);
  exchange.Publish(publisher, {Lit::Neg(a)});
  EXPECT_EQ(solver.ImportClauses(), 1u);
  EXPECT_EQ(solver.stats().imported_clauses, 1u);
  ASSERT_EQ(solver.Solve(), SolveResult::kSat);
  EXPECT_FALSE(solver.model()[static_cast<std::size_t>(a)]);
  EXPECT_TRUE(solver.model()[static_cast<std::size_t>(b)]);
}

TEST(SolverTest, ImportCanRefuteFormula) {
  ClauseExchange exchange;
  const int publisher = exchange.Register(7, 7);
  const int subscriber = exchange.Register(7, 7);
  Solver solver;
  const Var a = solver.NewVar();
  ASSERT_TRUE(solver.AddClause({Lit::Pos(a)}));
  solver.SetClauseExchange(&exchange, subscriber);
  exchange.Publish(publisher, {Lit::Neg(a)});
  EXPECT_EQ(solver.ImportClauses(), 1u);
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
}

TEST(SolverTest, ImportSkipsOutOfRangeVariables) {
  ClauseExchange exchange;
  const int publisher = exchange.Register(1, 1);
  const int subscriber = exchange.Register(1, 1);
  Solver solver;
  solver.NewVar();
  solver.SetClauseExchange(&exchange, subscriber);
  exchange.Publish(publisher, {Lit::Pos(99)});
  EXPECT_EQ(solver.ImportClauses(), 0u);
  EXPECT_EQ(solver.stats().imported_clauses, 0u);
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
}

TEST(SolverTest, ImportSuppressedWhileProofLogging) {
  ClauseExchange exchange;
  const int publisher = exchange.Register(3, 3);
  const int subscriber = exchange.Register(3, 3);
  Solver solver;
  solver.NewVar();
  std::vector<Clause> proof;
  solver.SetProofLog(&proof);
  solver.SetClauseExchange(&exchange, subscriber);
  exchange.Publish(publisher, {Lit::Neg(0)});
  // A foreign clause cannot be justified by the local RUP log, so nothing
  // may be imported while a proof is being recorded.
  EXPECT_EQ(solver.ImportClauses(), 0u);
}

TEST(SolverTest, ExportsLearntsToExchange) {
  ClauseExchange exchange;
  const int participant = exchange.Register(11, 11);
  Solver solver;
  solver.SetClauseExchange(&exchange, participant);
  ASSERT_TRUE(solver.AddCnf(testutil::PigeonholeCnf(6)));
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
  EXPECT_GT(solver.stats().exported_clauses, 0u);
  EXPECT_GT(exchange.totals().published, 0u);
}


TEST(SolverInvariantsTest, HoldOnFreshSolver) {
  Solver solver;
  std::string error;
  EXPECT_TRUE(solver.CheckInvariants(&error)) << error;
  solver.NewVar();
  solver.NewVar();
  EXPECT_TRUE(solver.CheckInvariants(&error)) << error;
}

TEST(SolverInvariantsTest, HoldAfterAddingClauses) {
  Solver solver;
  ASSERT_TRUE(solver.AddCnf(testutil::PigeonholeCnf(5)));
  std::string error;
  EXPECT_TRUE(solver.CheckInvariants(&error)) << error;
}

TEST(SolverInvariantsTest, HoldAfterUnsatSolve) {
  Solver solver;
  ASSERT_TRUE(solver.AddCnf(testutil::PigeonholeCnf(6)));
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
  std::string error;
  EXPECT_TRUE(solver.CheckInvariants(&error)) << error;
}

TEST(SolverInvariantsTest, HoldAfterSatSolveAndRandomFormulas) {
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    Solver solver;
    const Cnf cnf = testutil::RandomCnf(rng, 30, 80);
    if (!solver.AddCnf(cnf)) continue;
    solver.Solve();
    std::string error;
    ASSERT_TRUE(solver.CheckInvariants(&error)) << error;
  }
}

TEST(SolverInvariantsTest, HoldBetweenAssumptionSolves) {
  // Satisfiable formula in which assuming x0 forces a conflict by
  // propagation, so each round alternates assumption-UNSAT and SAT results
  // while the solver itself stays consistent.
  Cnf cnf(3);
  cnf.AddBinary(Lit::Neg(0), Lit::Pos(1));
  cnf.AddBinary(Lit::Neg(1), Lit::Pos(2));
  cnf.AddBinary(Lit::Neg(2), Lit::Neg(0));
  Solver solver;
  ASSERT_TRUE(solver.AddCnf(cnf));
  std::string error;
  for (int round = 0; round < 4; ++round) {
    EXPECT_EQ(solver.SolveWithAssumptions({Lit::Pos(0)}),
              SolveResult::kUnsat);
    ASSERT_TRUE(solver.okay());
    ASSERT_TRUE(solver.CheckInvariants(&error)) << error;
    EXPECT_EQ(solver.SolveWithAssumptions({Lit::Neg(0)}),
              SolveResult::kSat);
    ASSERT_TRUE(solver.okay());
    ASSERT_TRUE(solver.CheckInvariants(&error)) << error;
  }
}

TEST(SolverInvariantsTest, DebugOptionChecksAtRestartBoundaries) {
  // Pigeonhole PHP(7, 6) needs thousands of conflicts, so the restart loop
  // (and with it the debug invariant scan) runs many times.
  SolverOptions options;
  options.debug_check_invariants = true;
  Solver solver(options);
  ASSERT_TRUE(solver.AddCnf(testutil::PigeonholeCnf(6)));
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
  EXPECT_GT(solver.stats().restarts, 1u);
}

}  // namespace
}  // namespace satfr::sat
