// Tests of DRUP proof logging (Solver::SetProofLog) and the independent
// RUP checker, including end-to-end verification of unroutability proofs.
#include <gtest/gtest.h>

#include "encode/csp_to_cnf.h"
#include "encode/registry.h"
#include "sat/rup_checker.h"
#include "sat/solver.h"
#include "test_util.h"

namespace satfr::sat {
namespace {

// Runs the solver with proof logging and, on UNSAT, checks the proof.
void SolveAndVerify(const Cnf& cnf, bool expect_unsat) {
  Solver solver;
  std::vector<Clause> proof;
  solver.SetProofLog(&proof);
  SolveResult result = SolveResult::kUnsat;
  if (solver.AddCnf(cnf)) result = solver.Solve();
  ASSERT_EQ(result == SolveResult::kUnsat, expect_unsat);
  if (expect_unsat) {
    std::string error;
    EXPECT_TRUE(VerifyRupRefutation(cnf, proof, &error)) << error;
  }
}

TEST(RupCheckerTest, TrivialContradiction) {
  Cnf cnf(1);
  cnf.AddUnit(Lit::Pos(0));
  cnf.AddUnit(Lit::Neg(0));
  SolveAndVerify(cnf, /*expect_unsat=*/true);
}

TEST(RupCheckerTest, EmptyClauseInFormula) {
  Cnf cnf(1);
  cnf.AddClause({});
  // The formula refutes itself; even an empty proof verifies.
  EXPECT_TRUE(VerifyRupRefutation(cnf, {}));
}

TEST(RupCheckerTest, PigeonholeProofsVerify) {
  for (int holes : {3, 4, 5, 6}) {
    SolveAndVerify(testutil::PigeonholeCnf(holes), /*expect_unsat=*/true);
  }
}

TEST(RupCheckerTest, RandomUnsatProofsVerify) {
  Rng rng(515151);
  int unsat_seen = 0;
  for (int i = 0; i < 40 && unsat_seen < 10; ++i) {
    const Cnf cnf = testutil::RandomCnf(rng, 14, 60, 3);
    Solver probe;
    SolveResult result = SolveResult::kUnsat;
    if (probe.AddCnf(cnf)) result = probe.Solve();
    if (result != SolveResult::kUnsat) continue;
    ++unsat_seen;
    SolveAndVerify(cnf, /*expect_unsat=*/true);
  }
  EXPECT_GE(unsat_seen, 5);
}

TEST(RupCheckerTest, MissingEmptyClauseRejected) {
  Cnf cnf(2);
  cnf.AddBinary(Lit::Pos(0), Lit::Pos(1));
  // A proof of a satisfiable formula can never verify as a refutation.
  std::string error;
  EXPECT_FALSE(VerifyRupRefutation(cnf, {}, &error));
  EXPECT_NE(error.find("does not derive"), std::string::npos);
}

TEST(RupCheckerTest, BogusStepRejected) {
  // x0|x1, and a "proof" asserting the non-consequence unit x0.
  Cnf cnf(2);
  cnf.AddBinary(Lit::Pos(0), Lit::Pos(1));
  std::vector<Clause> proof;
  proof.push_back({Lit::Pos(0)});
  proof.push_back({});
  std::string error;
  EXPECT_FALSE(VerifyRupRefutation(cnf, proof, &error));
  EXPECT_NE(error.find("step 0"), std::string::npos);
}

TEST(RupCheckerTest, TruncatedProofRejected) {
  // A valid prefix of a pigeonhole proof must NOT verify (no refutation).
  const Cnf cnf = testutil::PigeonholeCnf(5);
  Solver solver;
  std::vector<Clause> proof;
  solver.SetProofLog(&proof);
  ASSERT_TRUE(solver.AddCnf(cnf));
  ASSERT_EQ(solver.Solve(), SolveResult::kUnsat);
  ASSERT_GT(proof.size(), 4u);
  proof.resize(proof.size() / 2);
  // Either the prefix fails RUP at some step (it should not — it is a
  // prefix of a valid proof) or it fails for not reaching the empty clause.
  std::string error;
  EXPECT_FALSE(VerifyRupRefutation(cnf, proof, &error));
  EXPECT_NE(error.find("does not derive"), std::string::npos);
}

TEST(RupCheckerTest, ColoringUnsatProofsVerifyAcrossEncodings) {
  // The paper's use case: verify unroutability proofs of coloring CNFs for
  // several encodings (triangle with 2 colors; K5 with 4 colors).
  graph::Graph k5(5);
  for (graph::VertexId u = 0; u < 5; ++u) {
    for (graph::VertexId v = u + 1; v < 5; ++v) k5.AddEdge(u, v);
  }
  for (const char* name :
       {"log", "direct", "muldirect", "ITE-linear", "ITE-log",
        "ITE-linear-2+muldirect", "muldirect-3+muldirect"}) {
    const encode::EncodedColoring enc =
        EncodeColoring(k5, 4, encode::GetEncoding(name));
    SolveAndVerify(enc.cnf, /*expect_unsat=*/true);
  }
}

TEST(RupCheckerTest, AssumptionUnsatDoesNotFakeARefutation) {
  // UNSAT *under assumptions* must not produce a proof that the formula
  // itself is UNSAT.
  Cnf cnf(2);
  cnf.AddBinary(Lit::Pos(0), Lit::Pos(1));
  Solver solver;
  std::vector<Clause> proof;
  solver.SetProofLog(&proof);
  ASSERT_TRUE(solver.AddCnf(cnf));
  ASSERT_EQ(solver.SolveWithAssumptions({Lit::Neg(0), Lit::Neg(1)}),
            SolveResult::kUnsat);
  EXPECT_TRUE(solver.okay());
  EXPECT_FALSE(VerifyRupRefutation(cnf, proof));
}

TEST(RupCheckerTest, SatisfiableInstancesLogNoRefutation) {
  Cnf cnf(3);
  cnf.AddTernary(Lit::Pos(0), Lit::Pos(1), Lit::Pos(2));
  Solver solver;
  std::vector<Clause> proof;
  solver.SetProofLog(&proof);
  ASSERT_TRUE(solver.AddCnf(cnf));
  ASSERT_EQ(solver.Solve(), SolveResult::kSat);
  EXPECT_FALSE(VerifyRupRefutation(cnf, proof));
}

}  // namespace
}  // namespace satfr::sat
