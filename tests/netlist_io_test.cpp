#include <gtest/gtest.h>

#include <sstream>

#include "netlist/netlist_io.h"

namespace satfr::netlist {
namespace {

constexpr const char* kGood =
    "satfr_netlist 1\n"
    "circuit demo\n"
    "grid 4\n"
    "# blocks\n"
    "block a 0 0\n"
    "block b 2 1\n"
    "block c 3 3\n"
    "net n0 a b c\n"
    "net n1 c a\n";

TEST(NetlistIoTest, ParseGoodFile) {
  std::string error;
  const auto parsed = ParsePlacedNetlistString(kGood, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->params.name, "demo");
  EXPECT_EQ(parsed->params.grid_size, 4);
  EXPECT_EQ(parsed->netlist.num_blocks(), 3);
  EXPECT_EQ(parsed->netlist.num_nets(), 2);
  EXPECT_EQ(parsed->netlist.net(0).sinks.size(), 2u);
  EXPECT_EQ(parsed->placement.LocationOf(1).x, 2);
  EXPECT_EQ(parsed->placement.LocationOf(1).y, 1);
}

TEST(NetlistIoTest, RoundTripThroughWriter) {
  const auto parsed = ParsePlacedNetlistString(kGood);
  ASSERT_TRUE(parsed.has_value());
  std::ostringstream out;
  WritePlacedNetlist(parsed->netlist, parsed->placement, "demo", out);
  const auto reparsed = ParsePlacedNetlistString(out.str());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->params.name, "demo");
  EXPECT_EQ(reparsed->netlist.num_blocks(), parsed->netlist.num_blocks());
  for (NetId n = 0; n < parsed->netlist.num_nets(); ++n) {
    EXPECT_EQ(reparsed->netlist.net(n).source,
              parsed->netlist.net(n).source);
    EXPECT_EQ(reparsed->netlist.net(n).sinks, parsed->netlist.net(n).sinks);
  }
}

TEST(NetlistIoTest, GeneratedBenchmarksRoundTrip) {
  for (const std::string name : {"tiny", "9symml"}) {
    const McncBenchmark bench = GenerateMcncBenchmark(name);
    std::ostringstream out;
    WritePlacedNetlist(bench.netlist, bench.placement, name, out);
    std::string error;
    const auto reparsed = ParsePlacedNetlistString(out.str(), &error);
    ASSERT_TRUE(reparsed.has_value()) << name << ": " << error;
    EXPECT_EQ(reparsed->netlist.num_nets(), bench.netlist.num_nets());
    for (BlockId b = 0; b < bench.netlist.num_blocks(); ++b) {
      EXPECT_EQ(reparsed->placement.LocationOf(b).x,
                bench.placement.LocationOf(b).x);
    }
  }
}

TEST(NetlistIoTest, RejectsMissingHeader) {
  std::string error;
  EXPECT_FALSE(ParsePlacedNetlistString("grid 4\n", &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(NetlistIoTest, RejectsUnknownBlockInNet) {
  std::string error;
  EXPECT_FALSE(ParsePlacedNetlistString(
                   "satfr_netlist 1\ngrid 2\nblock a 0 0\nnet n a ghost\n",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("unknown block"), std::string::npos);
}

TEST(NetlistIoTest, RejectsDuplicateBlock) {
  std::string error;
  EXPECT_FALSE(
      ParsePlacedNetlistString(
          "satfr_netlist 1\ngrid 2\nblock a 0 0\nblock a 1 1\n", &error)
          .has_value());
  EXPECT_NE(error.find("duplicate block"), std::string::npos);
}

TEST(NetlistIoTest, RejectsSharedSite) {
  std::string error;
  EXPECT_FALSE(
      ParsePlacedNetlistString(
          "satfr_netlist 1\ngrid 2\nblock a 0 0\nblock b 0 0\n", &error)
          .has_value());
  EXPECT_NE(error.find("share site"), std::string::npos);
}

TEST(NetlistIoTest, RejectsOffGridBlock) {
  std::string error;
  EXPECT_FALSE(ParsePlacedNetlistString(
                   "satfr_netlist 1\ngrid 2\nblock a 5 0\n", &error)
                   .has_value());
  EXPECT_NE(error.find("off-grid"), std::string::npos);
}

TEST(NetlistIoTest, RejectsNetWithoutSinks) {
  std::string error;
  EXPECT_FALSE(ParsePlacedNetlistString(
                   "satfr_netlist 1\ngrid 2\nblock a 0 0\nnet n a\n", &error)
                   .has_value());
}

TEST(NetlistIoTest, MissingFile) {
  std::string error;
  EXPECT_FALSE(
      ParsePlacedNetlistFile("/nonexistent/x.net", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace satfr::netlist
