#include <gtest/gtest.h>

#include "netlist/placement.h"

namespace satfr::netlist {
namespace {

TEST(PlacementTest, PlaceAndQuery) {
  Placement placement(4, 2);
  EXPECT_TRUE(placement.Place(0, 1, 2));
  EXPECT_TRUE(placement.IsPlaced(0));
  EXPECT_FALSE(placement.IsPlaced(1));
  const fpga::Coord c = placement.LocationOf(0);
  EXPECT_EQ(c.x, 1);
  EXPECT_EQ(c.y, 2);
}

TEST(PlacementTest, SiteCollisionRejected) {
  Placement placement(4, 2);
  EXPECT_TRUE(placement.Place(0, 0, 0));
  EXPECT_FALSE(placement.Place(1, 0, 0));
  EXPECT_FALSE(placement.IsPlaced(1));
}

TEST(PlacementTest, OutOfRangeRejected) {
  Placement placement(4, 1);
  EXPECT_FALSE(placement.Place(0, -1, 0));
  EXPECT_FALSE(placement.Place(0, 4, 0));
  EXPECT_FALSE(placement.Place(0, 0, 7));
}

TEST(PlacementTest, BlockAt) {
  Placement placement(4, 2);
  placement.Place(0, 2, 3);
  EXPECT_EQ(placement.BlockAt(2, 3), std::optional<BlockId>(0));
  EXPECT_EQ(placement.BlockAt(0, 0), std::nullopt);
  EXPECT_EQ(placement.BlockAt(-1, 0), std::nullopt);
  EXPECT_EQ(placement.BlockAt(4, 0), std::nullopt);
}

TEST(PlacementTest, CoversNetlist) {
  Netlist nets;
  nets.AddBlock("a");
  nets.AddBlock("b");
  Placement placement(3, 2);
  placement.Place(0, 0, 0);
  EXPECT_FALSE(placement.CoversNetlist(nets));
  placement.Place(1, 1, 1);
  EXPECT_TRUE(placement.CoversNetlist(nets));
}

}  // namespace
}  // namespace satfr::netlist
