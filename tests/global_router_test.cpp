#include <gtest/gtest.h>

#include "netlist/mcnc_suite.h"
#include "route/global_router.h"

namespace satfr::route {
namespace {

using fpga::Arch;
using fpga::DeviceGraph;

TEST(GlobalRouterTest, RoutesValidateOnAllSmallBenchmarks) {
  for (const std::string name : {"tiny", "9symml", "term1"}) {
    const netlist::McncBenchmark bench =
        netlist::GenerateMcncBenchmark(name);
    const Arch arch(bench.params.grid_size);
    const DeviceGraph device(arch);
    const GlobalRouting routing =
        RouteGlobally(device, bench.netlist, bench.placement);
    std::string error;
    EXPECT_TRUE(
        ValidateGlobalRouting(arch, bench.placement, routing, &error))
        << name << ": " << error;
    EXPECT_EQ(routing.NumTwoPinNets(),
              static_cast<std::size_t>(bench.netlist.NumTwoPinConnections()))
        << name;
  }
}

TEST(GlobalRouterTest, NegotiationDoesNotWorsenShortestPathPeak) {
  const netlist::McncBenchmark bench = netlist::GenerateMcncBenchmark("term1");
  const Arch arch(bench.params.grid_size);
  const DeviceGraph device(arch);

  // Baseline: pure shortest paths (negotiation disabled via 0 rounds).
  GlobalRouterOptions no_negotiation;
  no_negotiation.negotiation_rounds = 0;
  const GlobalRouting baseline =
      RouteGlobally(device, bench.netlist, bench.placement, no_negotiation);

  const GlobalRouting negotiated =
      RouteGlobally(device, bench.netlist, bench.placement);
  EXPECT_LE(PeakCongestion(arch, negotiated),
            PeakCongestion(arch, baseline));
}

TEST(GlobalRouterTest, Deterministic) {
  const netlist::McncBenchmark bench = netlist::GenerateMcncBenchmark("9symml");
  const Arch arch(bench.params.grid_size);
  const DeviceGraph device(arch);
  const GlobalRouting a = RouteGlobally(device, bench.netlist, bench.placement);
  const GlobalRouting b = RouteGlobally(device, bench.netlist, bench.placement);
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_EQ(a.routes[i], b.routes[i]) << "route " << i;
  }
}

TEST(GlobalRouterTest, PeakCongestionIsPositive) {
  const netlist::McncBenchmark bench = netlist::GenerateMcncBenchmark("tiny");
  const Arch arch(bench.params.grid_size);
  const DeviceGraph device(arch);
  const GlobalRouting routing =
      RouteGlobally(device, bench.netlist, bench.placement);
  EXPECT_GE(PeakCongestion(arch, routing), 1);
}

}  // namespace
}  // namespace satfr::route
