// Tests for the net-grouped clause layer: the NetGroupedSink decorator, the
// grouped encoder's clause-count and equisatisfiability contract, the
// satlint net-group-hygiene pass (clean tables accepted, each crafted
// defect caught — including the cross-guard allowance), and the
// StreamingDimacsSink round trip of a grouped formula with its activation
// toggles.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/runner.h"
#include "common/rng.h"
#include "encode/csp_to_cnf.h"
#include "encode/net_group.h"
#include "encode/registry.h"
#include "graph/graph.h"
#include "sat/clause_sink.h"
#include "sat/cnf.h"
#include "sat/dimacs.h"
#include "sat/solver.h"
#include "symmetry/symmetry.h"
#include "test_util.h"

namespace satfr::encode {
namespace {

using sat::Clause;
using sat::Cnf;
using sat::CnfCollectorSink;
using sat::Lit;
using sat::SolveResult;
using sat::Solver;
using sat::Var;

graph::Graph Triangle() {
  graph::Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  return g;
}

// ---------------------------------------------------------------------------
// NetGroupedSink mechanics.
// ---------------------------------------------------------------------------

TEST(NetGroupedSinkTest, PassthroughOutsideGroups) {
  Cnf cnf(2);
  CnfCollectorSink collector(cnf);
  NetGroupedSink sink(collector);
  sink.EmitClause({Lit::Pos(0), Lit::Neg(1)});
  ASSERT_TRUE(sink.Finish());
  ASSERT_EQ(cnf.num_clauses(), 1u);
  EXPECT_EQ(cnf.clauses()[0], Clause({Lit::Pos(0), Lit::Neg(1)}));
  EXPECT_TRUE(sink.table().groups.empty());
  EXPECT_EQ(sink.table().first_activation_var, -1);
}

TEST(NetGroupedSinkTest, PrependsOwnActivationLiteral) {
  Cnf cnf(2);
  CnfCollectorSink collector(cnf);
  NetGroupedSink sink(collector);
  const Var a = sink.BeginGroup(/*net=*/7);
  EXPECT_EQ(a, 2);  // first variable past the passthrough ones
  sink.EmitClause({Lit::Pos(0), Lit::Neg(1)});
  sink.EndGroup();
  ASSERT_TRUE(sink.Finish());
  ASSERT_EQ(cnf.num_clauses(), 1u);
  EXPECT_EQ(cnf.clauses()[0],
            Clause({Lit::Neg(a), Lit::Pos(0), Lit::Neg(1)}));
  ASSERT_EQ(sink.table().groups.size(), 1u);
  const NetGroup& group = sink.table().groups[0];
  EXPECT_EQ(group.net, 7);
  EXPECT_EQ(group.epoch, 0);
  EXPECT_EQ(group.activation, a);
  EXPECT_EQ(group.clause_begin, 0u);
  EXPECT_EQ(group.clause_end, 1u);
  EXPECT_EQ(sink.table().first_activation_var, a);
}

TEST(NetGroupedSinkTest, ReemissionOpensFreshEpochAndVariable) {
  Cnf cnf(1);
  CnfCollectorSink collector(cnf);
  NetGroupedSink sink(collector);
  const Var a0 = sink.BeginGroup(4);
  sink.EmitClause({Lit::Pos(0)});
  sink.EndGroup();
  const Var a1 = sink.BeginGroup(4);
  sink.EmitClause({Lit::Neg(0)});
  sink.EndGroup();
  ASSERT_TRUE(sink.Finish());
  ASSERT_EQ(sink.table().groups.size(), 2u);
  EXPECT_NE(a0, a1);
  EXPECT_EQ(sink.table().groups[0].epoch, 0);
  EXPECT_EQ(sink.table().groups[1].epoch, 1);
  EXPECT_EQ(sink.table().groups[1].net, 4);
}

TEST(NetGroupedSinkTest, FinishFailsWhileGroupOpen) {
  Cnf cnf(1);
  CnfCollectorSink collector(cnf);
  NetGroupedSink sink(collector);
  sink.BeginGroup(0);
  EXPECT_TRUE(sink.group_open());
  EXPECT_FALSE(sink.Finish());
  sink.EndGroup();
  EXPECT_TRUE(sink.Finish());
}

// ---------------------------------------------------------------------------
// Grouped encoder contract: same clause count as the flat encoder, and the
// conjunction of all groups under assumed selectors is equisatisfiable.
// ---------------------------------------------------------------------------

struct GroupedEncode {
  Cnf cnf;
  NetGroupTable table;
  ColoringLayout layout;
};

GroupedEncode EncodeGrouped(const graph::Graph& g, int width,
                            const EncodingSpec& spec,
                            const std::vector<graph::VertexId>& sequence) {
  GroupedEncode out;
  CnfCollectorSink collector(out.cnf);
  NetGroupedSink sink(collector);
  out.layout = EncodeColoringGrouped(g, width, spec, sequence, sink);
  EXPECT_TRUE(sink.Finish());
  out.table = sink.table();
  return out;
}

SolveResult SolveGroupedActive(const GroupedEncode& grouped) {
  Solver solver;
  solver.EnsureVars(grouped.cnf.num_vars());
  for (const Clause& clause : grouped.cnf.clauses()) {
    if (!solver.AddClause(clause)) return SolveResult::kUnsat;
  }
  std::vector<Lit> assumptions;
  for (const NetGroup& group : grouped.table.groups) {
    assumptions.push_back(Lit::Pos(group.activation));
  }
  return solver.SolveWithAssumptions(assumptions);
}

TEST(GroupedEncodeTest, ClauseCountMatchesFlatEncoder) {
  const graph::Graph g = Triangle();
  for (const std::string& name : EvaluatedEncodingNames()) {
    const EncodingSpec& spec = GetEncoding(name);
    const std::vector<graph::VertexId> sequence = symmetry::SymmetrySequence(
        g, /*num_colors=*/3, symmetry::Heuristic::kS1);
    const GroupedEncode grouped = EncodeGrouped(g, 3, spec, sequence);
    EXPECT_EQ(grouped.cnf.num_clauses(),
              ExpectedColoringClauses(g, grouped.layout.domain, 3,
                                      sequence.size()))
        << name;
    EXPECT_EQ(grouped.table.groups.size(), 3u) << name;
  }
}

TEST(GroupedEncodeTest, EquisatisfiableWithFlatEncodeAcrossEncodings) {
  Rng rng(20260808);
  const graph::Graph g = testutil::RandomGraph(rng, 8, 0.35);
  for (const std::string& name : EvaluatedEncodingNames()) {
    const EncodingSpec& spec = GetEncoding(name);
    for (const auto heuristic :
         {symmetry::Heuristic::kNone, symmetry::Heuristic::kB1,
          symmetry::Heuristic::kS1}) {
      for (const int width : {2, 4}) {
        const std::vector<graph::VertexId> sequence =
            symmetry::SymmetrySequence(g, width, heuristic);
        const EncodedColoring flat =
            EncodeColoring(g, width, spec, sequence);
        Solver flat_solver;
        flat_solver.EnsureVars(flat.cnf.num_vars());
        bool flat_consistent = true;
        for (const Clause& clause : flat.cnf.clauses()) {
          if (!flat_solver.AddClause(clause)) flat_consistent = false;
        }
        const SolveResult expected =
            flat_consistent ? flat_solver.Solve() : SolveResult::kUnsat;

        const GroupedEncode grouped = EncodeGrouped(g, width, spec, sequence);
        EXPECT_EQ(SolveGroupedActive(grouped), expected)
            << name << " width=" << width;
      }
    }
  }
}

TEST(GroupedEncodeTest, FalseSelectorVacatesItsGroup) {
  // Triangle at width 2 is uncolorable with every net active; retiring any
  // one net leaves a single edge, which is 2-colorable — the retired group
  // must contribute nothing under its false selector.
  const graph::Graph g = Triangle();
  const GroupedEncode grouped =
      EncodeGrouped(g, 2, GetEncoding("muldirect"), {});
  ASSERT_EQ(grouped.table.groups.size(), 3u);

  Solver solver;
  solver.EnsureVars(grouped.cnf.num_vars());
  for (const Clause& clause : grouped.cnf.clauses()) {
    ASSERT_TRUE(solver.AddClause(clause));
  }
  std::vector<Lit> all;
  for (const NetGroup& group : grouped.table.groups) {
    all.push_back(Lit::Pos(group.activation));
  }
  EXPECT_EQ(solver.SolveWithAssumptions(all), SolveResult::kUnsat);

  std::vector<Lit> two(all.begin() + 1, all.end());
  ASSERT_TRUE(solver.AddClause({Lit::Neg(grouped.table.groups[0].activation)}));
  EXPECT_EQ(solver.SolveWithAssumptions(two), SolveResult::kSat);
}

// ---------------------------------------------------------------------------
// net-group-hygiene pass: clean tables pass, crafted defects are caught.
// ---------------------------------------------------------------------------

std::vector<analysis::Diagnostic> HygieneFindings(const Cnf& cnf,
                                                 const NetGroupTable& table) {
  analysis::AnalysisInput input;
  input.cnf = &cnf;
  input.net_groups = &table;
  const analysis::AnalysisReport report =
      analysis::MakeDefaultRunner().Run(input);
  std::vector<analysis::Diagnostic> found;
  for (const analysis::Diagnostic& d : report.diagnostics) {
    if (d.pass == "net-group-hygiene") found.push_back(d);
  }
  return found;
}

NetGroup MakeGroup(graph::VertexId net, Var activation, std::uint64_t begin,
                   std::uint64_t end) {
  NetGroup group;
  group.net = net;
  group.activation = activation;
  group.clause_begin = begin;
  group.clause_end = end;
  return group;
}

TEST(NetGroupHygieneTest, CleanGroupedEncodePasses) {
  const graph::Graph g = Triangle();
  const std::vector<graph::VertexId> sequence = symmetry::SymmetrySequence(
      g, 3, symmetry::Heuristic::kS1);
  const GroupedEncode grouped =
      EncodeGrouped(g, 3, GetEncoding("ITE-linear-2+muldirect"), sequence);
  EXPECT_TRUE(HygieneFindings(grouped.cnf, grouped.table).empty());
}

TEST(NetGroupHygieneTest, CrossGuardOfKnownGroupAccepted) {
  // Conflict-clause shape: own selector plus the partner's, both negated.
  Cnf cnf(4);
  cnf.AddClause({Lit::Neg(2), Lit::Pos(0)});                // group A
  cnf.AddClause({Lit::Neg(3), Lit::Neg(2), Lit::Pos(1)});   // B, guard on A
  NetGroupTable table;
  table.first_activation_var = 2;
  table.groups = {MakeGroup(0, 2, 0, 1), MakeGroup(1, 3, 1, 2)};
  EXPECT_TRUE(HygieneFindings(cnf, table).empty());
}

TEST(NetGroupHygieneTest, MissingOwnSelectorCaught) {
  Cnf cnf(3);
  cnf.AddClause({Lit::Pos(0), Lit::Pos(1)});
  NetGroupTable table;
  table.first_activation_var = 2;
  table.groups = {MakeGroup(0, 2, 0, 1)};
  EXPECT_EQ(HygieneFindings(cnf, table).size(), 1u);
}

TEST(NetGroupHygieneTest, PositiveSelectorCaught) {
  Cnf cnf(2);
  cnf.AddClause({Lit::Pos(1), Lit::Pos(0)});
  NetGroupTable table;
  table.first_activation_var = 1;
  table.groups = {MakeGroup(0, 1, 0, 1)};
  EXPECT_EQ(HygieneFindings(cnf, table).size(), 1u);
}

TEST(NetGroupHygieneTest, SecondCrossGuardCaught) {
  Cnf cnf(4);
  cnf.AddClause({Lit::Neg(1), Lit::Pos(0)});
  cnf.AddClause({Lit::Neg(2), Lit::Pos(0)});
  cnf.AddClause({Lit::Neg(3), Lit::Neg(1), Lit::Neg(2), Lit::Pos(0)});
  NetGroupTable table;
  table.first_activation_var = 1;
  table.groups = {MakeGroup(0, 1, 0, 1), MakeGroup(1, 2, 1, 2),
                  MakeGroup(2, 3, 2, 3)};
  EXPECT_EQ(HygieneFindings(cnf, table).size(), 1u);
}

TEST(NetGroupHygieneTest, UnknownActivationRegionVariableCaught) {
  // A negated activation-region literal that is no group's selector is a
  // defect even though it "looks like" a cross guard.
  Cnf cnf(6);
  cnf.AddClause({Lit::Neg(1), Lit::Neg(5), Lit::Pos(0)});
  NetGroupTable table;
  table.first_activation_var = 1;
  table.groups = {MakeGroup(0, 1, 0, 1)};
  EXPECT_EQ(HygieneFindings(cnf, table).size(), 1u);
}

TEST(NetGroupHygieneTest, OverlappingRangesCaught) {
  Cnf cnf(3);
  cnf.AddClause({Lit::Neg(1), Lit::Pos(0)});
  cnf.AddClause({Lit::Neg(2), Lit::Pos(0)});
  NetGroupTable table;
  table.first_activation_var = 1;
  table.groups = {MakeGroup(0, 1, 0, 2), MakeGroup(1, 2, 1, 2)};
  EXPECT_FALSE(HygieneFindings(cnf, table).empty());
}

TEST(NetGroupHygieneTest, SharedActivationVariableCaught) {
  Cnf cnf(2);
  cnf.AddClause({Lit::Neg(1), Lit::Pos(0)});
  cnf.AddClause({Lit::Neg(1), Lit::Neg(0)});
  NetGroupTable table;
  table.first_activation_var = 1;
  table.groups = {MakeGroup(0, 1, 0, 1), MakeGroup(1, 1, 1, 2)};
  EXPECT_FALSE(HygieneFindings(cnf, table).empty());
}

TEST(NetGroupHygieneTest, UngroupedNonUnitTouchingSelectorCaught) {
  Cnf cnf(2);
  cnf.AddClause({Lit::Neg(1), Lit::Pos(0)});
  cnf.AddClause({Lit::Pos(1), Lit::Pos(0)});  // outside every group
  NetGroupTable table;
  table.first_activation_var = 1;
  table.groups = {MakeGroup(0, 1, 0, 1)};
  EXPECT_EQ(HygieneFindings(cnf, table).size(), 1u);
}

TEST(NetGroupHygieneTest, UngroupedActivationUnitsAllowed) {
  Cnf cnf(2);
  cnf.AddClause({Lit::Neg(1), Lit::Pos(0)});
  cnf.AddClause({Lit::Pos(1)});   // activation toggle
  cnf.AddClause({Lit::Neg(1)});   // retirement toggle
  NetGroupTable table;
  table.first_activation_var = 1;
  table.groups = {MakeGroup(0, 1, 0, 1)};
  EXPECT_TRUE(HygieneFindings(cnf, table).empty());
}

// ---------------------------------------------------------------------------
// StreamingDimacsSink round trip: a grouped encode plus its activation
// toggles survives the DIMACS detour byte-exactly and lints clean.
// ---------------------------------------------------------------------------

TEST(GroupedDimacsRoundTripTest, GroupedFormulaSurvivesDimacsAndLintsClean) {
  Rng rng(7);
  const graph::Graph g = testutil::RandomGraph(rng, 10, 0.3);
  const int width = 3;
  const EncodingSpec& spec = GetEncoding("ITE-linear-2+muldirect");
  const std::vector<graph::VertexId> sequence = symmetry::SymmetrySequence(
      g, width, symmetry::Heuristic::kS1);

  const std::string path =
      ::testing::TempDir() + "/net_group_roundtrip.cnf";
  Cnf collected;
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open());
    sat::StreamingDimacsSink dimacs(out, {"grouped encode round trip"});
    sat::CnfCollectorSink collector(collected);
    sat::TeeSink tee(dimacs, collector);
    NetGroupedSink sink(tee);
    EncodeColoringGrouped(g, width, spec, sequence, sink);
    // Activation toggles: every group switched on, as the routing session
    // would assume them. Emitted outside any group (unit passthrough), so
    // each activation variable also appears positively in the file.
    for (const NetGroup& group : sink.table().groups) {
      sink.EmitClause({Lit::Pos(group.activation)});
    }
    ASSERT_TRUE(sink.Finish());

    // The file's formula must lint clean as a plain DIMACS CNF.
    const auto parsed = sat::ParseDimacsFile(path);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->num_vars(), collected.num_vars());
    ASSERT_EQ(parsed->num_clauses(), collected.num_clauses());
    for (std::size_t c = 0; c < collected.num_clauses(); ++c) {
      EXPECT_EQ(parsed->clauses()[c], collected.clauses()[c]) << c;
    }
    analysis::AnalysisInput input;
    input.cnf = &*parsed;
    const analysis::AnalysisReport report =
        analysis::MakeDefaultRunner().Run(input);
    EXPECT_TRUE(report.diagnostics.empty())
        << analysis::FormatText(report);

    // And the round-tripped formula keeps the flat encoder's verdict: the
    // toggles force every group active.
    Solver parsed_solver;
    parsed_solver.EnsureVars(parsed->num_vars());
    bool consistent = true;
    for (const Clause& clause : parsed->clauses()) {
      if (!parsed_solver.AddClause(clause)) consistent = false;
    }
    const SolveResult round_tripped =
        consistent ? parsed_solver.Solve() : SolveResult::kUnsat;

    const EncodedColoring flat = EncodeColoring(g, width, spec, sequence);
    Solver flat_solver;
    flat_solver.EnsureVars(flat.cnf.num_vars());
    for (const Clause& clause : flat.cnf.clauses()) {
      ASSERT_TRUE(flat_solver.AddClause(clause));
    }
    EXPECT_EQ(round_tripped, flat_solver.Solve());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace satfr::encode
