// End-to-end coloring->CNF tests: equisatisfiability of all encodings with
// the exact chromatic number, and decodability of models into proper
// colorings.
#include <gtest/gtest.h>

#include "encode/csp_to_cnf.h"
#include "encode/registry.h"
#include "graph/coloring_bounds.h"
#include "sat/solver.h"
#include "test_util.h"

namespace satfr::encode {
namespace {

sat::SolveResult SolveColoring(const graph::Graph& g, int k,
                               const EncodingSpec& spec,
                               std::vector<int>* colors_out = nullptr) {
  const EncodedColoring encoded = EncodeColoring(g, k, spec);
  sat::Solver solver;
  if (!solver.AddCnf(encoded.cnf)) return sat::SolveResult::kUnsat;
  const sat::SolveResult result = solver.Solve();
  if (result == sat::SolveResult::kSat && colors_out) {
    *colors_out = DecodeColoring(encoded, solver.model());
  }
  return result;
}

graph::Graph Triangle() {
  graph::Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  return g;
}

TEST(CspToCnfTest, TriangleNeedsThreeColors) {
  const graph::Graph g = Triangle();
  for (const EncodingSpec& spec : AllEncodings()) {
    EXPECT_EQ(SolveColoring(g, 2, spec), sat::SolveResult::kUnsat)
        << spec.name;
    std::vector<int> colors;
    EXPECT_EQ(SolveColoring(g, 3, spec, &colors), sat::SolveResult::kSat)
        << spec.name;
    EXPECT_TRUE(g.IsProperColoring(colors)) << spec.name;
  }
}

TEST(CspToCnfTest, EdgelessGraphOneColor) {
  const graph::Graph g(4);
  for (const EncodingSpec& spec : AllEncodings()) {
    std::vector<int> colors;
    EXPECT_EQ(SolveColoring(g, 1, spec, &colors), sat::SolveResult::kSat)
        << spec.name;
    EXPECT_EQ(colors, (std::vector<int>{0, 0, 0, 0})) << spec.name;
  }
}

TEST(CspToCnfTest, SingleEdgeOneColorUnsat) {
  graph::Graph g(2);
  g.AddEdge(0, 1);
  for (const EncodingSpec& spec : AllEncodings()) {
    EXPECT_EQ(SolveColoring(g, 1, spec), sat::SolveResult::kUnsat)
        << spec.name;
  }
}

TEST(CspToCnfTest, StatsCountClauseCategories) {
  graph::Graph g(3);
  g.AddEdge(0, 1);
  const EncodedColoring enc = EncodeColoring(g, 4, GetEncoding("direct"));
  // 3 vertices x (1 ALO + 6 AMO) structural, 1 edge x 4 conflict clauses.
  EXPECT_EQ(enc.stats.structural_clauses, 21u);
  EXPECT_EQ(enc.stats.conflict_clauses, 4u);
  EXPECT_EQ(enc.stats.symmetry_clauses, 0u);
  EXPECT_EQ(enc.cnf.num_clauses(), 25u);
  EXPECT_EQ(enc.cnf.num_vars(), 12);
}

TEST(CspToCnfTest, VertexOffsetsAreContiguousBlocks) {
  graph::Graph g(3);
  g.AddEdge(0, 1);
  const EncodedColoring enc =
      EncodeColoring(g, 5, GetEncoding("ITE-linear"));
  EXPECT_EQ(enc.domain.num_vars, 4);
  EXPECT_EQ(enc.vertex_offset, (std::vector<int>{0, 4, 8}));
}

TEST(CspToCnfTest, SymmetryClausesAreCounted) {
  graph::Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  const std::vector<graph::VertexId> sequence{1, 2};
  const EncodedColoring enc =
      EncodeColoring(g, 4, GetEncoding("muldirect"), sequence);
  // Vertex 1 (position 1) loses colors 1..3 -> 3 clauses; vertex 2
  // (position 2) loses colors 2..3 -> 2 clauses.
  EXPECT_EQ(enc.stats.symmetry_clauses, 5u);
}

TEST(CspToCnfTest, DecodeReturnsMinusOneOnGarbageModel) {
  graph::Graph g(1);
  const EncodedColoring enc = EncodeColoring(g, 3, GetEncoding("direct"));
  // All-false assignment selects no value under the direct encoding.
  const std::vector<bool> garbage(static_cast<std::size_t>(
                                      enc.cnf.num_vars()),
                                  false);
  EXPECT_EQ(DecodeColoring(enc, garbage), (std::vector<int>{-1}));
}

// Property: every encoding agrees with the exact chromatic number on random
// graphs, at K = chi-1 (UNSAT), K = chi (SAT), and K = chi+1 (SAT), and all
// SAT models decode to proper colorings.
class EncodingEquisatTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EncodingEquisatTest, MatchesExactChromaticNumber) {
  const EncodingSpec spec = GetEncoding(GetParam());
  Rng rng(StableHash64(GetParam()));
  for (int i = 0; i < 6; ++i) {
    const graph::Graph g = testutil::RandomGraph(rng, 10, 0.35);
    const int chi = graph::ChromaticNumberExact(g);
    if (chi >= 2) {
      EXPECT_EQ(SolveColoring(g, chi - 1, spec), sat::SolveResult::kUnsat)
          << "K=chi-1, iteration " << i;
    }
    std::vector<int> colors;
    EXPECT_EQ(SolveColoring(g, chi, spec, &colors), sat::SolveResult::kSat)
        << "K=chi, iteration " << i;
    EXPECT_TRUE(g.IsProperColoring(colors));
    for (const int c : colors) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, chi);
    }
    std::vector<int> colors_plus;
    EXPECT_EQ(SolveColoring(g, chi + 1, spec, &colors_plus),
              sat::SolveResult::kSat)
        << "K=chi+1, iteration " << i;
    EXPECT_TRUE(g.IsProperColoring(colors_plus));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, EncodingEquisatTest,
    ::testing::ValuesIn(AllEncodingNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace satfr::encode
