// Mutation suite: proves the model checker actually catches the bugs it
// exists for. Each binary built from this source has exactly one deque
// memory_order deliberately weakened through the SATFR_MC_MUTATE_* hooks
// in src/cube/work_queue.h, and the corresponding test asserts the litmus
// property FAILS — with a trail that replays to the same failure. If the
// checker's memory model ever gets too strong (forcing more ordering than
// the C++ model guarantees), these tests go green-on-mutant and fail the
// build.
//
// The healthy-build counterparts of these exact litmus bodies live in
// tests/mc_litmus_test.cpp and must pass there — together the two suites
// bracket the checker: sound on correct code, sensitive to weakened code.

#if !defined(SATFR_MODEL_CHECK)
#error "mc_mutation_test requires a SATFR_MODEL_CHECK build"
#endif
#if !defined(SATFR_MC_MUTATE_DEQUE_POP_FENCE) && \
    !defined(SATFR_MC_MUTATE_DEQUE_STEAL_BOTTOM)
#error "mc_mutation_test requires one SATFR_MC_MUTATE_* definition"
#endif

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "cube/work_queue.h"
#include "mc/model_check.h"

namespace satfr {
namespace {

// Steals until the deque is both unstealable and empty-looking; a failed
// steal alone can be a lost race.
[[maybe_unused]] void StealLoop(cube::WorkStealingDeque* dq, std::vector<std::int64_t>* out) {
  std::int64_t item;
  for (;;) {
    if (dq->Steal(&item)) {
      out->push_back(item);
      continue;
    }
    if (dq->Empty()) break;
    mc::Yield();
  }
}

[[maybe_unused]] void CheckMultiset(const std::vector<std::vector<std::int64_t>>& taken,
                   const std::vector<std::int64_t>& expected) {
  std::vector<std::int64_t> all;
  for (const auto& per_thread : taken) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  MC_CHECK(all.size() == expected.size(), "cube lost or popped twice");
  for (std::size_t i = 0; i < expected.size(); ++i) {
    MC_CHECK(all[i] == expected[i], "wrong cube multiset");
  }
}

// Root pushes three items before spawning, owner pops vs one thief. With
// the PopBottom seq_cst fence weakened to relaxed, the owner can read a
// top that predates the thief's steals and take an already-stolen slot
// again (the classic Chase-Lev double-take).
[[maybe_unused]] void PrePushedExactlyOnceBody() {
  auto dq = std::make_shared<cube::WorkStealingDeque>(4);
  dq->PushBottom(101);
  dq->PushBottom(102);
  dq->PushBottom(103);
  auto taken =
      std::make_shared<std::vector<std::vector<std::int64_t>>>(std::size_t{2});
  mc::Thread owner([dq, taken] {
    std::int64_t item;
    while (dq->PopBottom(&item)) (*taken)[0].push_back(item);
  });
  mc::Thread thief([dq, taken] { StealLoop(dq.get(), &(*taken)[1]); });
  owner.Join();
  thief.Join();
  CheckMultiset(*taken, {101, 102, 103});
}

// Owner pushes DURING the run (no happens-before gift from the spawn), so
// the thief's acquire load of bottom is the only thing ordering the slot
// write before the steal's read. Weakened to relaxed, the thief can see
// the advanced bottom but a stale (zero-initialized) slot.
[[maybe_unused]] void OwnerPushesDuringRunBody() {
  auto dq = std::make_shared<cube::WorkStealingDeque>(4);
  auto taken =
      std::make_shared<std::vector<std::vector<std::int64_t>>>(std::size_t{2});
  mc::Thread owner([dq, taken] {
    dq->PushBottom(42);
    dq->PushBottom(43);
    std::int64_t item;
    while (dq->PopBottom(&item)) (*taken)[0].push_back(item);
  });
  mc::Thread thief([dq, taken] { StealLoop(dq.get(), &(*taken)[1]); });
  owner.Join();
  thief.Join();
  CheckMultiset(*taken, {42, 43});
}

void ExpectCaughtAndReplayable(void (*body)(), const char* what) {
  mc::ModelCheckOptions opts;
  opts.max_exhaustive_schedules = 10000;
  opts.random_schedules = 1000;
  const mc::ModelCheckResult res = mc::Check(body, opts);
  ASSERT_FALSE(res.ok) << "checker did NOT catch the mutated " << what;
  EXPECT_NE(res.failure.find("MC_CHECK failed"), std::string::npos)
      << res.failure;
  ASSERT_FALSE(res.failing_trail.empty());

  // The reported schedule must replay to the identical failure.
  mc::ModelCheckOptions replay;
  replay.replay_trail = res.failing_trail;
  const mc::ModelCheckResult again = mc::Check(body, replay);
  ASSERT_FALSE(again.ok) << "failing trail replayed clean for " << what;
  EXPECT_EQ(again.failure, res.failure);

  // And when the random walk found it, so must the seed.
  if (res.failing_seed != 0) {
    mc::ModelCheckOptions by_seed;
    by_seed.replay_seed = res.failing_seed;
    const mc::ModelCheckResult seed_run = mc::Check(body, by_seed);
    EXPECT_FALSE(seed_run.ok) << "failing seed replayed clean for " << what;
  }
}

#if defined(SATFR_MC_MUTATE_DEQUE_POP_FENCE)
TEST(McMutation, CatchesWeakenedPopBottomFence) {
  ExpectCaughtAndReplayable(PrePushedExactlyOnceBody,
                            "PopBottom seq_cst fence");
}
#endif

#if defined(SATFR_MC_MUTATE_DEQUE_STEAL_BOTTOM)
TEST(McMutation, CatchesWeakenedStealBottomLoad) {
  ExpectCaughtAndReplayable(OwnerPushesDuringRunBody,
                            "Steal acquire load of bottom");
}
#endif

}  // namespace
}  // namespace satfr
