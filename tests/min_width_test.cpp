#include <gtest/gtest.h>

#include "flow/conflict_graph.h"
#include "flow/min_width.h"
#include "flow/track_checker.h"
#include "graph/coloring_bounds.h"
#include "netlist/mcnc_suite.h"
#include "route/global_router.h"
#include "test_util.h"

namespace satfr::flow {
namespace {

using fpga::Arch;
using fpga::DeviceGraph;

TEST(MinWidthTest, MatchesExactChromaticNumberOnRandomGraphs) {
  Rng rng(606);
  for (int i = 0; i < 10; ++i) {
    const graph::Graph g = testutil::RandomGraph(rng, 12, 0.35);
    const int chi = graph::ChromaticNumberExact(g);
    const MinWidthResult result = FindMinimumWidthOnGraph(g, 1, {});
    EXPECT_EQ(result.min_width, chi) << "iteration " << i;
    EXPECT_TRUE(result.proven_optimal);
    EXPECT_EQ(result.routable.status, sat::SolveResult::kSat);
    if (chi > 1) {
      EXPECT_EQ(result.unroutable.status, sat::SolveResult::kUnsat);
    }
  }
}

TEST(MinWidthTest, StartsFromLowerBound) {
  graph::Graph triangle(3);
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(0, 2);
  const MinWidthResult result = FindMinimumWidthOnGraph(triangle, 3, {});
  EXPECT_EQ(result.min_width, 3);
  EXPECT_EQ(result.lower_bound, 3);
  EXPECT_TRUE(result.proven_optimal);
  // Lower bound == min width: the W-1 proof was produced explicitly.
  EXPECT_EQ(result.unroutable.status, sat::SolveResult::kUnsat);
}

TEST(MinWidthTest, EndToEndOnBenchmark) {
  const netlist::McncBenchmark bench = netlist::GenerateMcncBenchmark("tiny");
  const Arch arch(bench.params.grid_size);
  const DeviceGraph device(arch);
  const route::GlobalRouting routing =
      route::RouteGlobally(device, bench.netlist, bench.placement);
  const MinWidthResult result = FindMinimumWidth(arch, routing);
  ASSERT_GT(result.min_width, 0);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_GE(result.min_width, result.lower_bound);
  // The routable result carries a checkable detailed routing.
  std::string error;
  EXPECT_TRUE(ValidateTrackAssignment(arch, routing,
                                      result.routable.tracks,
                                      result.min_width, &error))
      << error;
  // And the conflict graph is genuinely not colorable below it.
  const graph::Graph conflict = BuildConflictGraph(arch, routing);
  EXPECT_EQ(graph::ChromaticNumberExact(conflict), result.min_width);
}

TEST(MinWidthTest, CubeModeMatchesExactChromaticNumber) {
  Rng rng(808);
  for (int i = 0; i < 6; ++i) {
    const graph::Graph g = testutil::RandomGraph(rng, 12, 0.35);
    const int chi = graph::ChromaticNumberExact(g);
    MinWidthOptions options;
    options.cube_workers = 2;
    const MinWidthResult result = FindMinimumWidthOnGraph(g, 1, options);
    EXPECT_EQ(result.min_width, chi) << "iteration " << i;
    EXPECT_TRUE(result.proven_optimal);
    EXPECT_EQ(result.routable.status, sat::SolveResult::kSat);
    EXPECT_TRUE(g.IsProperColoring(result.routable.tracks));
    if (chi > 1) {
      EXPECT_EQ(result.unroutable.status, sat::SolveResult::kUnsat);
    }
  }
}

TEST(MinWidthTest, TimeoutLeavesMinWidthUnset) {
  // A graph large enough that a ~zero timeout cannot solve it.
  Rng rng(707);
  const graph::Graph g = testutil::RandomGraph(rng, 60, 0.5);
  MinWidthOptions options;
  options.route.timeout_seconds = 1e-6;
  const MinWidthResult result = FindMinimumWidthOnGraph(g, 2, options);
  EXPECT_EQ(result.min_width, -1);
  EXPECT_FALSE(result.proven_optimal);
}

TEST(MinWidthTest, EdgelessGraphWidthOne) {
  const graph::Graph g(5);
  const MinWidthResult result = FindMinimumWidthOnGraph(g, 1, {});
  EXPECT_EQ(result.min_width, 1);
  EXPECT_TRUE(result.proven_optimal);
}

}  // namespace
}  // namespace satfr::flow
