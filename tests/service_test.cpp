// Functional tests for src/service: the cache tiers and their keys, the
// job scheduler, the routing service end-to-end (verdict equivalence with
// the direct flow, all three hit paths, kUnknown never cached), per-client
// sessions, and the service-cache-coherence satlint pass.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/pass.h"
#include "analysis/runner.h"
#include "flow/detailed_router.h"
#include "graph/graph.h"
#include "service/cache.h"
#include "service/routing_service.h"
#include "service/scheduler.h"

namespace satfr::service {
namespace {

graph::Graph Triangle() {
  graph::Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  return g;
}

// A 2x4 "ladder" of triangles: chromatic number 3, a few more vertices so
// route times are nonzero but tiny.
graph::Graph TriangleLadder() {
  graph::Graph g(8);
  for (graph::VertexId i = 0; i + 2 < 8; ++i) {
    g.AddEdge(i, i + 1);
    g.AddEdge(i, i + 2);
  }
  return g;
}

// --- fingerprint and keys --------------------------------------------------

TEST(FingerprintGraph, StableAcrossIdenticalGraphs) {
  EXPECT_EQ(FingerprintGraph(Triangle()), FingerprintGraph(Triangle()));
  EXPECT_NE(FingerprintGraph(Triangle()), 0u);
}

TEST(FingerprintGraph, SensitiveToEdgesAndVertexCount) {
  graph::Graph path(3);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  EXPECT_NE(FingerprintGraph(Triangle()), FingerprintGraph(path));

  graph::Graph padded = Triangle();
  padded.AddVertex();  // same edges, one extra isolated vertex
  EXPECT_NE(FingerprintGraph(Triangle()), FingerprintGraph(padded));
}

TEST(CacheKey, HashAndEqualitySeparateEveryField) {
  const CacheKey base{1234, 4, "muldirect", "none", "siege"};
  CacheKey other = base;
  EXPECT_TRUE(base == other);
  EXPECT_EQ(base.Hash(), other.Hash());

  other.width = 5;
  EXPECT_FALSE(base == other);
  EXPECT_NE(base.Hash(), other.Hash());

  other = base;
  other.solver = "minisat";
  EXPECT_FALSE(base == other);
  EXPECT_NE(base.Hash(), other.Hash());

  other = base;
  other.solver.clear();  // the instance-tier spelling of the same instance
  EXPECT_NE(base.Hash(), other.Hash());
}

TEST(CacheKey, ToStringNamesTheInstance) {
  const CacheKey key{0xabc, 7, "muldirect", "s1", "siege"};
  const std::string s = key.ToString();
  EXPECT_NE(s.find("W7"), std::string::npos) << s;
  EXPECT_NE(s.find("muldirect"), std::string::npos) << s;
  EXPECT_NE(s.find("siege"), std::string::npos) << s;
}

// --- seqlock slot and summary table ---------------------------------------

TEST(SeqlockedSlot, NeverPublishedReadsFalse) {
  SeqlockedSlot<VerdictSummary> slot;
  VerdictSummary out;
  EXPECT_FALSE(slot.TryRead(&out));
}

TEST(SeqlockedSlot, RoundTripsAndOverwrites) {
  SeqlockedSlot<VerdictSummary> slot;
  VerdictSummary in;
  in.key_hash = 42;
  in.status = 2;
  in.width = 9;
  in.cold_solve_seconds = 1.5;
  slot.Publish(in);
  VerdictSummary out;
  ASSERT_TRUE(slot.TryRead(&out));
  EXPECT_EQ(out.key_hash, 42u);
  EXPECT_EQ(out.status, 2);
  EXPECT_EQ(out.width, 9);
  EXPECT_DOUBLE_EQ(out.cold_solve_seconds, 1.5);

  in.key_hash = 43;
  in.width = 11;
  slot.Publish(in);
  ASSERT_TRUE(slot.TryRead(&out));
  EXPECT_EQ(out.key_hash, 43u);
  EXPECT_EQ(out.width, 11);
}

TEST(VerdictSummaryTable, ProbeMatchesOnlyItsKeyHash) {
  VerdictSummaryTable table(/*slots=*/4);
  EXPECT_EQ(table.num_slots(), 4u);
  VerdictSummary out;
  EXPECT_FALSE(table.Probe(21, &out));

  VerdictSummary in;
  in.key_hash = 21;
  in.status = 1;
  table.Publish(in);
  ASSERT_TRUE(table.Probe(21, &out));
  EXPECT_EQ(out.key_hash, 21u);

  // Same slot (21 % 4 == 25 % 4), different key: the hash check rejects.
  EXPECT_FALSE(table.Probe(25, &out));
  in.key_hash = 25;
  table.Publish(in);
  EXPECT_TRUE(table.Probe(25, &out));
  EXPECT_FALSE(table.Probe(21, &out));  // overwritten by the collision
}

// --- sharded LRU -----------------------------------------------------------

CacheKey KeyW(int width) { return CacheKey{99, width, "e", "s", ""}; }

TEST(ShardedLruCache, LookupPromotesAndCountsHits) {
  CacheTierOptions options{/*num_shards=*/1, /*max_entries_per_shard=*/4,
                           /*max_bytes_per_shard=*/1u << 20};
  ShardedLruCache<int> cache(options);
  EXPECT_EQ(cache.Lookup(KeyW(1)), nullptr);
  cache.Insert(KeyW(1), std::make_shared<const int>(10), 8);
  std::uint64_t hits = 0;
  const auto v = cache.Lookup(KeyW(1), &hits);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 10);
  EXPECT_EQ(hits, 1u);
  cache.Lookup(KeyW(1), &hits);
  EXPECT_EQ(hits, 2u);

  const CacheTierStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 3u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 8u);
}

TEST(ShardedLruCache, EvictsLeastRecentlyUsedOnEntryBound) {
  CacheTierOptions options{1, /*max_entries_per_shard=*/2, 1u << 20};
  ShardedLruCache<int> cache(options);
  cache.Insert(KeyW(1), std::make_shared<const int>(1), 1);
  cache.Insert(KeyW(2), std::make_shared<const int>(2), 1);
  cache.Lookup(KeyW(1));  // promote 1; 2 becomes the LRU victim
  cache.Insert(KeyW(3), std::make_shared<const int>(3), 1);
  EXPECT_NE(cache.Lookup(KeyW(1)), nullptr);
  EXPECT_EQ(cache.Lookup(KeyW(2)), nullptr);
  EXPECT_NE(cache.Lookup(KeyW(3)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ShardedLruCache, EvictsOnByteBoundButKeepsOneEntry) {
  CacheTierOptions options{1, /*max_entries_per_shard=*/8,
                           /*max_bytes_per_shard=*/100};
  ShardedLruCache<int> cache(options);
  cache.Insert(KeyW(1), std::make_shared<const int>(1), 60);
  cache.Insert(KeyW(2), std::make_shared<const int>(2), 60);  // 120 > 100
  EXPECT_EQ(cache.Lookup(KeyW(1)), nullptr);
  EXPECT_NE(cache.Lookup(KeyW(2)), nullptr);

  // A single oversized entry stays resident: the bound never empties the
  // shard below one entry.
  cache.Insert(KeyW(3), std::make_shared<const int>(3), 500);
  EXPECT_NE(cache.Lookup(KeyW(3)), nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ShardedLruCache, RefreshInPlaceAndErase) {
  ShardedLruCache<int> cache(CacheTierOptions{1, 4, 1u << 20});
  cache.Insert(KeyW(1), std::make_shared<const int>(1), 10);
  cache.Insert(KeyW(1), std::make_shared<const int>(7), 20);
  const auto v = cache.Lookup(KeyW(1));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 7);
  EXPECT_EQ(cache.stats().insertions, 1u);  // refresh is not an insert
  EXPECT_EQ(cache.stats().bytes, 20u);

  EXPECT_TRUE(cache.Erase(KeyW(1)));
  EXPECT_FALSE(cache.Erase(KeyW(1)));
  EXPECT_EQ(cache.Lookup(KeyW(1)), nullptr);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(ShardedLruCache, SampleIsDeterministicAndBounded) {
  ShardedLruCache<int> cache(CacheTierOptions{4, 16, 1u << 20});
  for (int i = 0; i < 12; ++i) {
    cache.Insert(KeyW(i), std::make_shared<const int>(i), 1);
  }
  const auto a = cache.Sample(5, /*seed=*/7);
  const auto b = cache.Sample(5, /*seed=*/7);
  ASSERT_EQ(a.size(), 5u);
  ASSERT_EQ(b.size(), 5u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].key == b[i].key);
  }
  EXPECT_EQ(cache.Sample(100, 7).size(), 12u);
}

// --- scheduler -------------------------------------------------------------

TEST(JobScheduler, RunsEveryJobExactlyOnce) {
  SchedulerOptions options;
  options.num_workers = 2;
  JobScheduler scheduler(options);
  std::atomic<int> ran{0};
  std::vector<JobScheduler::Handle> handles;
  for (int i = 0; i < 64; ++i) {
    handles.push_back(scheduler.Submit(
        [&ran](const mc::Atomic<bool>&) { ran.fetch_add(1); }));
  }
  scheduler.WaitIdle();
  EXPECT_EQ(ran.load(), 64);
  for (const auto& handle : handles) {
    EXPECT_EQ(scheduler.StatusOf(handle), JobStatus::kDone);
  }
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 64u);
  EXPECT_EQ(stats.completed, 64u);
  EXPECT_EQ(stats.cancelled, 0u);
}

TEST(JobScheduler, HigherPriorityRunsFirstOnOneWorker) {
  SchedulerOptions options;
  options.num_workers = 1;
  JobScheduler scheduler(options);

  // Hold the single worker on a blocker so the next three jobs are drained
  // from the inbox together, then released in priority order.
  std::atomic<bool> release{false};
  const auto blocker =
      scheduler.Submit([&release](const mc::Atomic<bool>&) {
        while (!release.load()) std::this_thread::yield();
      });
  std::mutex order_mutex;
  std::vector<int> order;
  auto record = [&](int tag) {
    return [&order_mutex, &order, tag](const mc::Atomic<bool>&) {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(tag);
    };
  };
  scheduler.Submit(record(0), /*priority=*/0);
  scheduler.Submit(record(9), /*priority=*/9);
  scheduler.Submit(record(5), /*priority=*/5);
  release.store(true);
  scheduler.Wait(blocker);
  scheduler.WaitIdle();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 9);
  EXPECT_EQ(order[1], 5);
  EXPECT_EQ(order[2], 0);
}

TEST(JobScheduler, CancelBeforeRunMeansNeverRuns) {
  SchedulerOptions options;
  options.num_workers = 1;
  JobScheduler scheduler(options);
  std::atomic<bool> release{false};
  const auto blocker =
      scheduler.Submit([&release](const mc::Atomic<bool>&) {
        while (!release.load()) std::this_thread::yield();
      });
  std::atomic<bool> ran{false};
  const auto doomed = scheduler.Submit(
      [&ran](const mc::Atomic<bool>&) { ran.store(true); });
  EXPECT_TRUE(scheduler.Cancel(doomed));
  EXPECT_FALSE(scheduler.Cancel(doomed));  // second cancel lost the CAS
  release.store(true);
  EXPECT_EQ(scheduler.Wait(doomed), JobStatus::kCancelled);
  scheduler.WaitIdle();
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(scheduler.stats().cancelled, 1u);
}

TEST(JobScheduler, CancelWhileRunningSetsTheStopFlag) {
  SchedulerOptions options;
  options.num_workers = 1;
  JobScheduler scheduler(options);
  std::atomic<bool> started{false};
  const auto handle =
      scheduler.Submit([&started](const mc::Atomic<bool>& cancel) {
        started.store(true);
        while (!cancel.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      });
  while (!started.load()) std::this_thread::yield();
  EXPECT_FALSE(scheduler.Cancel(handle));  // too late to prevent the run
  EXPECT_EQ(scheduler.Wait(handle), JobStatus::kDone);
}

// --- routing service end-to-end -------------------------------------------

RouteRequest TriangleRequest(const std::shared_ptr<const graph::Graph>& g,
                             int width) {
  RouteRequest request;
  request.label = "triangle";
  request.graph = g;
  request.width = width;
  request.encoding = "muldirect";
  request.symmetry = "none";
  return request;
}

TEST(RoutingService, MatchesDirectFlowOnBothVerdicts) {
  ServiceOptions options;
  options.scheduler.num_workers = 2;
  RoutingService svc(options);
  const auto g = std::make_shared<const graph::Graph>(Triangle());

  flow::DetailedRouteOptions direct;
  direct.encoding = encode::GetEncoding("muldirect");
  direct.heuristic = symmetry::Heuristic::kNone;
  const flow::DetailedRouteResult sat3 =
      flow::RouteDetailedOnGraph(*g, 3, direct);
  const flow::DetailedRouteResult unsat2 =
      flow::RouteDetailedOnGraph(*g, 2, direct);
  ASSERT_EQ(sat3.status, sat::SolveResult::kSat);
  ASSERT_EQ(unsat2.status, sat::SolveResult::kUnsat);

  const Response& r3 = svc.Wait(svc.Submit(TriangleRequest(g, 3)));
  EXPECT_TRUE(r3.ok) << r3.error;
  EXPECT_EQ(r3.status, sat::SolveResult::kSat);
  ASSERT_EQ(r3.tracks.size(), 3u);
  // The tracks must be a proper 3-coloring of the triangle.
  EXPECT_NE(r3.tracks[0], r3.tracks[1]);
  EXPECT_NE(r3.tracks[1], r3.tracks[2]);
  EXPECT_NE(r3.tracks[0], r3.tracks[2]);

  const Response& r2 = svc.Wait(svc.Submit(TriangleRequest(g, 2)));
  EXPECT_EQ(r2.status, sat::SolveResult::kUnsat);
  EXPECT_TRUE(r2.tracks.empty());
}

TEST(RoutingService, RepeatQueriesHitTheVerdictTiers) {
  ServiceOptions options;
  options.scheduler.num_workers = 1;
  RoutingService svc(options);
  const auto g = std::make_shared<const graph::Graph>(TriangleLadder());

  const Response& cold = svc.Wait(svc.Submit(TriangleRequest(g, 2)));
  ASSERT_EQ(cold.status, sat::SolveResult::kUnsat);
  EXPECT_FALSE(cold.verdict_hit);

  // UNSAT repeat: served by the lock-free summary front.
  const Response& warm = svc.Wait(svc.Submit(TriangleRequest(g, 2)));
  EXPECT_EQ(warm.status, sat::SolveResult::kUnsat);
  EXPECT_TRUE(warm.verdict_hit);
  EXPECT_TRUE(warm.summary_hit);

  // SAT repeat: tracks live only in the locked tier.
  svc.Wait(svc.Submit(TriangleRequest(g, 3)));
  const Response& warm_sat = svc.Wait(svc.Submit(TriangleRequest(g, 3)));
  EXPECT_EQ(warm_sat.status, sat::SolveResult::kSat);
  EXPECT_TRUE(warm_sat.verdict_hit);
  EXPECT_FALSE(warm_sat.summary_hit);
  EXPECT_FALSE(warm_sat.tracks.empty());

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_GE(stats.verdicts.hits + stats.summary_hits, 2u);
}

TEST(RoutingService, SolverPresetChangesVerdictKeyButSharesInstance) {
  ServiceOptions options;
  options.scheduler.num_workers = 1;
  RoutingService svc(options);
  const auto g = std::make_shared<const graph::Graph>(TriangleLadder());

  svc.Wait(svc.Submit(TriangleRequest(g, 3)));  // cold: fills both tiers
  RouteRequest other = TriangleRequest(g, 3);
  other.solver = "minisat";
  const Response& r = svc.Wait(svc.Submit(other));
  EXPECT_EQ(r.status, sat::SolveResult::kSat);
  EXPECT_FALSE(r.verdict_hit);   // different verdict key
  EXPECT_TRUE(r.instance_hit);   // same encoded CNF
  EXPECT_EQ(svc.stats().instances.entries, 1u);
}

TEST(RoutingService, MalformedRequestsSettleAsErrors) {
  RoutingService svc;
  RouteRequest no_graph;
  no_graph.width = 3;
  const Response& r1 = svc.Wait(svc.Submit(std::move(no_graph)));
  EXPECT_FALSE(r1.ok);
  EXPECT_FALSE(r1.error.empty());

  const auto g = std::make_shared<const graph::Graph>(Triangle());
  RouteRequest bad_sym = TriangleRequest(g, 3);
  bad_sym.symmetry = "not-a-heuristic";
  const Response& r2 = svc.Wait(svc.Submit(std::move(bad_sym)));
  EXPECT_FALSE(r2.ok);

  RouteRequest bad_enc = TriangleRequest(g, 3);
  bad_enc.encoding = "not-an-encoding";
  const Response& r3 = svc.Wait(svc.Submit(std::move(bad_enc)));
  EXPECT_FALSE(r3.ok);
  // Nothing broken was cached.
  EXPECT_EQ(svc.stats().verdicts.entries, 0u);
}

TEST(RoutingService, UnknownVerdictsAreNeverCached) {
  ServiceOptions options;
  options.scheduler.num_workers = 1;
  RoutingService svc(options);
  const auto g = std::make_shared<const graph::Graph>(TriangleLadder());
  RouteRequest request = TriangleRequest(g, 3);
  request.timeout_seconds = 1e-9;  // expire before the solver can finish
  const Response& r = svc.Wait(svc.Submit(std::move(request)));
  if (r.status == sat::SolveResult::kUnknown) {
    EXPECT_EQ(svc.stats().verdicts.insertions, 0u);
    EXPECT_EQ(svc.stats().verdicts.entries, 0u);
  } else {
    // Machine beat a nanosecond budget; the decided answer may be cached.
    EXPECT_EQ(r.status, sat::SolveResult::kSat);
  }
}

TEST(RoutingService, BatchSubmitSettlesEveryTicket) {
  ServiceOptions options;
  options.scheduler.num_workers = 2;
  RoutingService svc(options);
  const auto g = std::make_shared<const graph::Graph>(TriangleLadder());
  std::vector<RouteRequest> batch;
  for (int i = 0; i < 12; ++i) {
    batch.push_back(TriangleRequest(g, i % 2 == 0 ? 3 : 2));
  }
  const std::vector<RoutingService::Ticket> tickets =
      svc.SubmitBatch(std::move(batch));
  ASSERT_EQ(tickets.size(), 12u);
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const Response& r = svc.Wait(tickets[i]);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.status, i % 2 == 0 ? sat::SolveResult::kSat
                                   : sat::SolveResult::kUnsat);
  }
  svc.Drain();
}

// --- sessions --------------------------------------------------------------

TEST(RoutingService, SessionOpsApplyInOrderAndMatchTheGraph) {
  ServiceOptions options;
  options.scheduler.num_workers = 2;
  RoutingService svc(options);
  const auto g = std::make_shared<const graph::Graph>(Triangle());
  std::string error;
  ASSERT_TRUE(svc.OpenSession("client-a", g, /*max_width=*/3, "muldirect",
                              "none", &error))
      << error;
  EXPECT_TRUE(svc.HasSession("client-a"));
  EXPECT_FALSE(svc.HasSession("client-b"));

  // Rip net 0 out: the remaining edge {1,2} is 2-colorable.
  const auto t1 = svc.SubmitRipUp("client-a", 0);
  const auto t2 = svc.SubmitSessionSolve("client-a", 2);
  // Bring it back against both others: 2 tracks are too few again.
  const auto t3 = svc.SubmitReroute("client-a", 0, {1, 2});
  const auto t4 = svc.SubmitSessionSolve("client-a", 2);
  const auto t5 = svc.SubmitSessionSolve("client-a", 3);

  const Response& rip = svc.Wait(t1);
  EXPECT_TRUE(rip.ok) << rip.error;
  EXPECT_EQ(rip.kind, RequestKind::kSessionRipUp);
  const Response& sat_without = svc.Wait(t2);
  EXPECT_EQ(sat_without.status, sat::SolveResult::kSat);
  ASSERT_EQ(sat_without.tracks.size(), 3u);
  EXPECT_EQ(sat_without.tracks[0], -1);  // inactive net
  const Response& back = svc.Wait(t3);
  EXPECT_TRUE(back.ok) << back.error;
  EXPECT_EQ(svc.Wait(t4).status, sat::SolveResult::kUnsat);
  const Response& full = svc.Wait(t5);
  EXPECT_EQ(full.status, sat::SolveResult::kSat);

  EXPECT_EQ(svc.stats().session_ops, 5u);
  EXPECT_EQ(svc.stats().sessions_open, 1u);
  svc.CloseSession("client-a");
  EXPECT_FALSE(svc.HasSession("client-a"));
}

TEST(RoutingService, SessionOpWithoutSessionSettlesAsError) {
  RoutingService svc;
  const Response& r = svc.Wait(svc.SubmitRipUp("nobody", 0));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("nobody"), std::string::npos) << r.error;
}

TEST(RoutingService, SessionSolveWidthZeroUsesMaxWidth) {
  RoutingService svc;
  const auto g = std::make_shared<const graph::Graph>(Triangle());
  ASSERT_TRUE(svc.OpenSession("c", g, /*max_width=*/3, "muldirect", "none"));
  const Response& r = svc.Wait(svc.SubmitSessionSolve("c", 0));
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, sat::SolveResult::kSat);
}

// --- coherence sampling and the satlint pass -------------------------------

TEST(RoutingService, SampleCoherenceAgreesWithFreshSolves) {
  ServiceOptions options;
  options.scheduler.num_workers = 1;
  RoutingService svc(options);
  const auto g = std::make_shared<const graph::Graph>(Triangle());
  svc.Wait(svc.Submit(TriangleRequest(g, 3)));
  svc.Wait(svc.Submit(TriangleRequest(g, 2)));

  const std::vector<analysis::CoherenceSample> samples =
      svc.SampleCoherence(8);
  ASSERT_EQ(samples.size(), 2u);
  for (const analysis::CoherenceSample& sample : samples) {
    EXPECT_EQ(sample.cached_verdict, sample.fresh_verdict) << sample.key;
    if (sample.tracks_checked) EXPECT_TRUE(sample.tracks_valid);
  }

  analysis::AnalysisInput input;
  input.coherence_samples = &samples;
  const analysis::AnalysisReport report =
      analysis::MakeDefaultRunner().Run(input);
  EXPECT_EQ(report.Count(analysis::Severity::kError), 0u)
      << analysis::FormatText(report);
}

TEST(ServiceCoherencePass, FlagsDisagreementsAndBadTracks) {
  std::vector<analysis::CoherenceSample> samples(3);
  samples[0].key = "g1/W3";
  samples[0].cached_verdict = "SAT";
  samples[0].fresh_verdict = "UNSAT";  // the bug the pass exists for
  samples[1].key = "g1/W4";
  samples[1].cached_verdict = "SAT";
  samples[1].fresh_verdict = "SAT";
  samples[1].tracks_checked = true;
  samples[1].tracks_valid = false;  // cached tracks are not a coloring
  samples[2].key = "g1/W5";
  samples[2].cached_verdict = "UNSAT";
  samples[2].fresh_verdict = "UNKNOWN";  // re-solve timed out: no verdict

  analysis::AnalysisInput input;
  input.coherence_samples = &samples;
  const analysis::AnalysisReport report =
      analysis::MakeDefaultRunner().Run(input);
  EXPECT_EQ(report.Count(analysis::Severity::kError), 2u)
      << analysis::FormatText(report);

  bool saw_disagreement = false;
  bool saw_bad_tracks = false;
  for (const analysis::Diagnostic& d : report.diagnostics) {
    if (d.pass != "service-cache-coherence") continue;
    saw_disagreement |= d.location == "g1/W3";
    saw_bad_tracks |= d.location == "g1/W4";
  }
  EXPECT_TRUE(saw_disagreement);
  EXPECT_TRUE(saw_bad_tracks);
}

TEST(ServiceCoherencePass, NotApplicableWithoutSamples) {
  const analysis::AnalysisReport report =
      analysis::MakeDefaultRunner().Run(analysis::AnalysisInput{});
  for (const analysis::PassOutcome& outcome : report.outcomes) {
    if (outcome.pass == "service-cache-coherence") EXPECT_FALSE(outcome.ran);
  }
}

}  // namespace
}  // namespace satfr::service
