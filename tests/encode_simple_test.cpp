// Pins the log / direct / muldirect encodings to Table 1 of the paper:
// the exact clause sets for two adjacent CSP variables with domain {0,1,2}.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "encode/csp_to_cnf.h"
#include "encode/registry.h"
#include "encode/simple_encoders.h"

namespace satfr::encode {
namespace {

using sat::Clause;
using sat::Lit;

// Canonical form for order-insensitive clause-set comparison.
std::set<Clause> ClauseSet(const std::vector<Clause>& clauses) {
  std::set<Clause> out;
  for (Clause c : clauses) {
    std::sort(c.begin(), c.end());
    out.insert(std::move(c));
  }
  return out;
}

graph::Graph TwoAdjacentVertices() {
  graph::Graph g(2);
  g.AddEdge(0, 1);
  return g;
}

// Table 1, column "log": variables l_v1 l_v2 (our x0 x1) and l_w1 l_w2
// (our x2 x3).
TEST(Table1Test, LogEncodingClauses) {
  const EncodedColoring enc =
      EncodeColoring(TwoAdjacentVertices(), 3, GetEncoding("log"));
  EXPECT_EQ(enc.cnf.num_vars(), 4);
  const std::set<Clause> expected = ClauseSet({
      // conflict clauses (one per shared value)
      {Lit::Pos(0), Lit::Pos(1), Lit::Pos(2), Lit::Pos(3)},
      {Lit::Neg(0), Lit::Pos(1), Lit::Neg(2), Lit::Pos(3)},
      {Lit::Pos(0), Lit::Neg(1), Lit::Pos(2), Lit::Neg(3)},
      // excluded-illegal-values (pattern 11 per variable)
      {Lit::Neg(0), Lit::Neg(1)},
      {Lit::Neg(2), Lit::Neg(3)},
  });
  EXPECT_EQ(ClauseSet(enc.cnf.clauses()), expected);
  EXPECT_EQ(enc.stats.conflict_clauses, 3u);
  EXPECT_EQ(enc.stats.structural_clauses, 2u);
}

// Table 1, column "direct": x_v0..x_v2 (our x0..x2), x_w0..x_w2 (x3..x5).
TEST(Table1Test, DirectEncodingClauses) {
  const EncodedColoring enc =
      EncodeColoring(TwoAdjacentVertices(), 3, GetEncoding("direct"));
  EXPECT_EQ(enc.cnf.num_vars(), 6);
  const std::set<Clause> expected = ClauseSet({
      // at-least-one
      {Lit::Pos(0), Lit::Pos(1), Lit::Pos(2)},
      {Lit::Pos(3), Lit::Pos(4), Lit::Pos(5)},
      // at-most-one (pairwise)
      {Lit::Neg(0), Lit::Neg(1)},
      {Lit::Neg(0), Lit::Neg(2)},
      {Lit::Neg(1), Lit::Neg(2)},
      {Lit::Neg(3), Lit::Neg(4)},
      {Lit::Neg(3), Lit::Neg(5)},
      {Lit::Neg(4), Lit::Neg(5)},
      // conflict
      {Lit::Neg(0), Lit::Neg(3)},
      {Lit::Neg(1), Lit::Neg(4)},
      {Lit::Neg(2), Lit::Neg(5)},
  });
  EXPECT_EQ(ClauseSet(enc.cnf.clauses()), expected);
}

// Table 1, column "muldirect": direct minus the at-most-one clauses.
TEST(Table1Test, MuldirectEncodingClauses) {
  const EncodedColoring enc =
      EncodeColoring(TwoAdjacentVertices(), 3, GetEncoding("muldirect"));
  EXPECT_EQ(enc.cnf.num_vars(), 6);
  const std::set<Clause> expected = ClauseSet({
      {Lit::Pos(0), Lit::Pos(1), Lit::Pos(2)},
      {Lit::Pos(3), Lit::Pos(4), Lit::Pos(5)},
      {Lit::Neg(0), Lit::Neg(3)},
      {Lit::Neg(1), Lit::Neg(4)},
      {Lit::Neg(2), Lit::Neg(5)},
  });
  EXPECT_EQ(ClauseSet(enc.cnf.clauses()), expected);
}

// ------------------------------------------------ LevelEncoder specifics

TEST(LogEncoderTest, VarCountIsCeilLog2) {
  const LogEncoder enc;
  EXPECT_EQ(enc.Encode(1).num_vars, 0);
  EXPECT_EQ(enc.Encode(2).num_vars, 1);
  EXPECT_EQ(enc.Encode(3).num_vars, 2);
  EXPECT_EQ(enc.Encode(4).num_vars, 2);
  EXPECT_EQ(enc.Encode(5).num_vars, 3);
  EXPECT_EQ(enc.Encode(8).num_vars, 3);
  EXPECT_EQ(enc.Encode(9).num_vars, 4);
}

TEST(LogEncoderTest, IllegalPatternCount) {
  const LogEncoder enc;
  EXPECT_EQ(enc.Encode(4).structural.size(), 0u);  // power of two: none
  EXPECT_EQ(enc.Encode(5).structural.size(), 3u);  // patterns 5,6,7
  EXPECT_EQ(enc.Encode(13).structural.size(), 3u);
}

TEST(LogEncoderTest, CubesAreFullPatterns) {
  const LevelEncoding enc = LogEncoder().Encode(5);
  for (const Cube& cube : enc.cubes) {
    EXPECT_EQ(cube.size(), 3u);  // every cube mentions all bits
  }
  EXPECT_TRUE(enc.exactly_one);
}

TEST(DirectEncoderTest, ClauseCounts) {
  const LevelEncoding enc = DirectEncoder().Encode(5);
  EXPECT_EQ(enc.num_vars, 5);
  // 1 ALO + C(5,2)=10 AMO.
  EXPECT_EQ(enc.structural.size(), 11u);
  EXPECT_TRUE(enc.exactly_one);
}

TEST(MuldirectEncoderTest, OnlyAlo) {
  const LevelEncoding enc = MuldirectEncoder().Encode(5);
  EXPECT_EQ(enc.num_vars, 5);
  EXPECT_EQ(enc.structural.size(), 1u);
  EXPECT_FALSE(enc.exactly_one);
}

TEST(LevelEncoderTest, CountForVarBudget) {
  EXPECT_EQ(LogEncoder().CountForVarBudget(2), 4);
  EXPECT_EQ(DirectEncoder().CountForVarBudget(3), 3);
  EXPECT_EQ(MuldirectEncoder().CountForVarBudget(3), 3);
}

TEST(LevelEncoderTest, DefaultReducedCubesArePrefix) {
  const MuldirectEncoder enc;
  const auto reduced = enc.ReducedCubes(5, 3);
  ASSERT_EQ(reduced.size(), 3u);
  EXPECT_EQ(reduced[0], Cube{Lit::Pos(0)});
  EXPECT_EQ(reduced[2], Cube{Lit::Pos(2)});
  EXPECT_TRUE(enc.ReducedNeedsRestriction());
}

TEST(LevelEncoderTest, FactoryCoversAllKinds) {
  for (const LevelKind kind :
       {LevelKind::kLog, LevelKind::kDirect, LevelKind::kMuldirect,
        LevelKind::kIteLinear, LevelKind::kIteLog}) {
    const auto encoder = MakeLevelEncoder(kind);
    ASSERT_NE(encoder, nullptr);
    EXPECT_EQ(encoder->kind(), kind);
    EXPECT_EQ(encoder->Name(), ToString(kind));
  }
}

}  // namespace
}  // namespace satfr::encode
