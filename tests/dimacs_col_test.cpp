#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "graph/dimacs_col.h"
#include "test_util.h"

namespace satfr::graph {
namespace {

TEST(DimacsColTest, WriteCanonicalForm) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  std::ostringstream out;
  WriteDimacsCol(g, out, {"conflict graph"});
  EXPECT_EQ(out.str(),
            "c conflict graph\n"
            "p edge 3 2\n"
            "e 1 2\n"
            "e 2 3\n");
}

TEST(DimacsColTest, ParseBasic) {
  const auto g = ParseDimacsColString(
      "c a comment\n"
      "p edge 4 2\n"
      "e 1 2\n"
      "e 3 4\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_vertices(), 4);
  EXPECT_EQ(g->num_edges(), 2u);
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->HasEdge(2, 3));
}

TEST(DimacsColTest, ParseMergesDuplicateEdges) {
  const auto g = ParseDimacsColString("p edge 2 2\ne 1 2\ne 2 1\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST(DimacsColTest, ParseAcceptsEdgesKeyword) {
  EXPECT_TRUE(ParseDimacsColString("p edges 2 1\ne 1 2\n").has_value());
}

TEST(DimacsColTest, ParseRejectsMissingHeader) {
  EXPECT_FALSE(ParseDimacsColString("e 1 2\n").has_value());
}

TEST(DimacsColTest, ParseRejectsVertexOutOfRange) {
  EXPECT_FALSE(ParseDimacsColString("p edge 2 1\ne 1 3\n").has_value());
  EXPECT_FALSE(ParseDimacsColString("p edge 2 1\ne 0 1\n").has_value());
}

TEST(DimacsColTest, ParseRejectsGarbageLines) {
  EXPECT_FALSE(ParseDimacsColString("p edge 2 1\nx 1 2\n").has_value());
}

TEST(DimacsColTest, RandomRoundTrip) {
  Rng rng(555);
  for (int i = 0; i < 20; ++i) {
    const Graph g = testutil::RandomGraph(rng, 12, 0.3);
    std::ostringstream out;
    WriteDimacsCol(g, out);
    const auto parsed = ParseDimacsColString(out.str());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->num_vertices(), g.num_vertices());
    EXPECT_EQ(parsed->num_edges(), g.num_edges());
    EXPECT_EQ(parsed->Edges(), g.Edges());
  }
}

TEST(DimacsColTest, FileRoundTrip) {
  Graph g(2);
  g.AddEdge(0, 1);
  const std::string path = testing::TempDir() + "/satfr_col_test.col";
  ASSERT_TRUE(WriteDimacsColFile(g, path));
  const auto parsed = ParseDimacsColFile(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_edges(), 1u);
}

}  // namespace
}  // namespace satfr::graph
