#include <gtest/gtest.h>

#include "graph/coloring_bounds.h"
#include "route/greedy_track_assigner.h"
#include "test_util.h"

namespace satfr::route {
namespace {

graph::Graph Complete(int n) {
  graph::Graph g(n);
  for (graph::VertexId u = 0; u < n; ++u) {
    for (graph::VertexId v = u + 1; v < n; ++v) g.AddEdge(u, v);
  }
  return g;
}

TEST(GreedyTrackTest, EdgelessGraphOneTrack) {
  const graph::Graph g(5);
  const GreedyAssignResult result = GreedyAssignTracks(g, 1);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.tracks, (std::vector<int>{0, 0, 0, 0, 0}));
}

TEST(GreedyTrackTest, CompleteGraphNeedsNTracks) {
  const graph::Graph g = Complete(5);
  EXPECT_FALSE(GreedyAssignTracks(g, 4).success);
  const GreedyAssignResult result = GreedyAssignTracks(g, 5);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(g.IsProperColoring(result.tracks));
}

TEST(GreedyTrackTest, SuccessImpliesProperColoring) {
  Rng rng(77001);
  for (int i = 0; i < 30; ++i) {
    const graph::Graph g = testutil::RandomGraph(rng, 25, 0.3);
    const int width =
        graph::NumColorsUsed(graph::DsaturColoring(g)) + 1;
    const GreedyAssignResult result = GreedyAssignTracks(g, width);
    if (result.success) {
      EXPECT_TRUE(g.IsProperColoring(result.tracks));
      EXPECT_EQ(result.unassigned, 0);
    }
  }
}

TEST(GreedyTrackTest, FailureReportsUnassignedCount) {
  const graph::Graph g = Complete(6);
  const GreedyAssignResult result = GreedyAssignTracks(g, 3);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.unassigned, 3);  // 3 of 6 clique members fit in 3 tracks
}

TEST(GreedyTrackTest, RipupsCanOnlyHelp) {
  Rng rng(77002);
  for (int i = 0; i < 20; ++i) {
    const graph::Graph g = testutil::RandomGraph(rng, 20, 0.4);
    const int chi = graph::ChromaticNumberExact(g);
    GreedyAssignOptions no_ripup;
    GreedyAssignOptions with_ripup;
    with_ripup.max_ripups = 50;
    const int width_plain = GreedyMinimumWidth(g, chi, no_ripup);
    const int width_ripup = GreedyMinimumWidth(g, chi, with_ripup);
    ASSERT_GT(width_plain, 0);
    ASSERT_GT(width_ripup, 0);
    EXPECT_LE(width_ripup, width_plain);
  }
}

TEST(GreedyTrackTest, GreedyWidthIsUpperBoundOnChromatic) {
  // The SAT router's W* equals the chromatic number; greedy can only match
  // or exceed it. This is the paper's qualitative claim about
  // one-net-at-a-time routers.
  Rng rng(77003);
  int strictly_worse = 0;
  for (int i = 0; i < 25; ++i) {
    const graph::Graph g = testutil::RandomGraph(rng, 18, 0.45);
    const int chi = graph::ChromaticNumberExact(g);
    const int greedy = GreedyMinimumWidth(g, 1);
    ASSERT_GT(greedy, 0);
    EXPECT_GE(greedy, chi);
    if (greedy > chi) ++strictly_worse;
  }
  // On dense-ish random graphs greedy should lose at least occasionally —
  // otherwise this baseline would be pointless.
  EXPECT_GT(strictly_worse, 0);
}

TEST(GreedyTrackTest, Deterministic) {
  Rng rng(77004);
  const graph::Graph g = testutil::RandomGraph(rng, 30, 0.3);
  const GreedyAssignResult a = GreedyAssignTracks(g, 5);
  const GreedyAssignResult b = GreedyAssignTracks(g, 5);
  EXPECT_EQ(a.tracks, b.tracks);
  EXPECT_EQ(a.success, b.success);
}

TEST(GreedyTrackTest, MinWidthHonorsMaxWidth) {
  const graph::Graph g = Complete(8);
  EXPECT_EQ(GreedyMinimumWidth(g, 1, {}, /*max_width=*/5), -1);
  EXPECT_EQ(GreedyMinimumWidth(g, 1, {}, /*max_width=*/8), 8);
}

}  // namespace
}  // namespace satfr::route
