#include <gtest/gtest.h>

#include "flow/track_checker.h"

namespace satfr::flow {
namespace {

using fpga::Arch;

route::GlobalRouting SharedSegmentRouting(const Arch& arch,
                                          netlist::NetId parent_b) {
  route::GlobalRouting routing;
  routing.two_pin_nets = {{0, 0, 1}, {parent_b, 2, 3}};
  const auto seg = arch.HorizontalSegment(0, 0);
  routing.routes = {{seg}, {seg}};
  return routing;
}

TEST(TrackCheckerTest, DistinctTracksValid) {
  const Arch arch(3);
  const auto routing = SharedSegmentRouting(arch, 1);
  std::string error;
  EXPECT_TRUE(ValidateTrackAssignment(arch, routing, {0, 1}, 2, &error))
      << error;
}

TEST(TrackCheckerTest, SameTrackDifferentParentsInvalid) {
  const Arch arch(3);
  const auto routing = SharedSegmentRouting(arch, 1);
  std::string error;
  EXPECT_FALSE(ValidateTrackAssignment(arch, routing, {0, 0}, 2, &error));
  EXPECT_NE(error.find("shared by different multi-pin nets"),
            std::string::npos);
}

TEST(TrackCheckerTest, SameTrackSameParentValid) {
  const Arch arch(3);
  const auto routing = SharedSegmentRouting(arch, 0);  // same parent
  EXPECT_TRUE(ValidateTrackAssignment(arch, routing, {0, 0}, 1));
}

TEST(TrackCheckerTest, OutOfRangeTrackInvalid) {
  const Arch arch(3);
  const auto routing = SharedSegmentRouting(arch, 1);
  EXPECT_FALSE(ValidateTrackAssignment(arch, routing, {0, 2}, 2));
  EXPECT_FALSE(ValidateTrackAssignment(arch, routing, {-1, 0}, 2));
}

TEST(TrackCheckerTest, SizeMismatchInvalid) {
  const Arch arch(3);
  const auto routing = SharedSegmentRouting(arch, 1);
  EXPECT_FALSE(ValidateTrackAssignment(arch, routing, {0}, 2));
}

TEST(TrackCheckerTest, NonOverlappingRoutesAnyTracks) {
  const Arch arch(3);
  route::GlobalRouting routing;
  routing.two_pin_nets = {{0, 0, 1}, {1, 2, 3}};
  routing.routes = {{arch.HorizontalSegment(0, 0)},
                    {arch.HorizontalSegment(0, 2)}};
  EXPECT_TRUE(ValidateTrackAssignment(arch, routing, {0, 0}, 1));
}

}  // namespace
}  // namespace satfr::flow
