#include "sat/clause_exchange.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "sat/solver.h"

namespace satfr::sat {
namespace {

Clause C(std::initializer_list<int> dimacs) {
  Clause clause;
  for (const int l : dimacs) {
    clause.push_back(l > 0 ? Lit::Pos(l - 1) : Lit::Neg(-l - 1));
  }
  return clause;
}

TEST(ClauseExchangeTest, RegisterAssignsSequentialIds) {
  ClauseExchange exchange;
  EXPECT_EQ(exchange.Register(1, 1), 0);
  EXPECT_EQ(exchange.Register(1, 1), 1);
  EXPECT_EQ(exchange.Register(2, 2), 2);
}

TEST(ClauseExchangeTest, NoSelfImport) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, C({1, 2}));
  std::vector<SharedClause> got;
  EXPECT_EQ(exchange.Collect(a, &got), 0u);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(exchange.Collect(b, &got), 1u);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].lits, C({1, 2}));
}

TEST(ClauseExchangeTest, CursorOnlyReturnsNewClauses) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, C({1}));
  std::vector<SharedClause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 1u);
  EXPECT_EQ(exchange.Collect(b, &got), 0u);  // already seen
  exchange.Publish(a, C({2}));
  EXPECT_EQ(exchange.Collect(b, &got), 1u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1].lits, C({2}));
}

TEST(ClauseExchangeTest, FullKeyMismatchBlocksNonUnits) {
  ClauseExchange exchange;
  const int a = exchange.Register(/*full_key=*/1, /*unit_key=*/9);
  const int b = exchange.Register(/*full_key=*/2, /*unit_key=*/9);
  exchange.Publish(a, C({1, 2}));  // non-unit: needs full compatibility
  exchange.Publish(a, C({3}));     // unit: needs only unit compatibility
  std::vector<SharedClause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 1u);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].lits, C({3}));
}

TEST(ClauseExchangeTest, IncompatibleKeysExchangeNothing) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(2, 2);
  exchange.Publish(a, C({1, 2}));
  exchange.Publish(a, C({3}));
  std::vector<SharedClause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 0u);
  EXPECT_TRUE(got.empty());
}

TEST(ClauseExchangeTest, DuplicatesAreDropped) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, C({1, 2}));
  exchange.Publish(b, C({2, 1}));  // same clause, different literal order
  std::vector<SharedClause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 1u);
  EXPECT_EQ(exchange.totals().duplicates_dropped, 1u);
}

TEST(ClauseExchangeTest, CapacityEvictsOldest) {
  ClauseExchange exchange(/*capacity=*/2);
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, C({1}));
  exchange.Publish(a, C({2}));
  exchange.Publish(a, C({3}));  // evicts {1}
  std::vector<SharedClause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 2u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].lits, C({2}));
  EXPECT_EQ(got[1].lits, C({3}));
  EXPECT_EQ(exchange.totals().evicted, 1u);
}

TEST(ClauseExchangeTest, EmptyClauseIgnored) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, Clause{});
  std::vector<SharedClause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 0u);
  EXPECT_EQ(exchange.totals().published, 0u);
}

TEST(ClauseExchangeTest, TotalsTrackTraffic) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, C({1, 2}));
  exchange.Publish(b, C({-1, 3}));
  std::vector<SharedClause> got;
  exchange.Collect(a, &got);
  exchange.Collect(b, &got);
  const ClauseExchange::Totals totals = exchange.totals();
  EXPECT_EQ(totals.published, 2u);
  EXPECT_EQ(totals.collected, 2u);
}

TEST(ClauseExchangeTest, LbdTravelsWithTheClause) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, C({1, 2, 3}), /*lbd=*/2);
  exchange.Publish(a, C({4, 5}));  // default: lbd unknown (0)
  std::vector<SharedClause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 2u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].lbd, 2u);
  EXPECT_EQ(got[1].lbd, 0u);
}

TEST(ClauseExchangeTest, HashIgnoresLiteralOrder) {
  EXPECT_EQ(ClauseExchange::HashClause(C({1, -2, 3})),
            ClauseExchange::HashClause(C({3, 1, -2})));
  EXPECT_NE(ClauseExchange::HashClause(C({1, -2, 3})),
            ClauseExchange::HashClause(C({1, 2, 3})));
}

TEST(ClauseExchangeTest, SolverDropsReofferedClauseByLiteralHash) {
  // Regression: the exchange's duplicate window is bounded, so a clause a
  // solver already took can be re-offered later (evicted, then published
  // again — by another member, or as an echo of the solver's own export).
  // After the importer's arena GC the original copy lives at a different
  // address, so no clause-reference comparison can recognize the re-offer;
  // the solver must dedup by the order-insensitive literal hash and count
  // the drop in stats().import_duplicates.
  ClauseExchange exchange(/*capacity=*/1);
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);

  Solver solver;
  Cnf base(/*num_vars=*/6);
  base.AddClause(C({1, 2, 3, 4, 5, 6}));
  ASSERT_TRUE(solver.AddCnf(base));
  solver.SetClauseExchange(&exchange, a);

  exchange.Publish(b, C({1, 2, 3}));
  EXPECT_EQ(solver.ImportClauses(), 1u);

  // Publish enough distinct clauses to overflow the exchange's own dedup
  // set (it resets past capacity * 4 hashes), so the permuted re-offer of
  // the first clause is accepted again under a fresh sequence number.
  exchange.Publish(b, C({4, 5}));
  exchange.Publish(b, C({-1, -2}));
  exchange.Publish(b, C({-3, -4}));
  exchange.Publish(b, C({5, 6}));
  exchange.Publish(b, C({-5, -6}));
  exchange.Publish(b, C({3, 1, 2}));
  ASSERT_EQ(exchange.totals().duplicates_dropped, 0u);

  // Capacity 1: only the re-offer is still in the window, and the solver's
  // literal-hash dedup must reject it.
  EXPECT_EQ(solver.ImportClauses(), 0u);
  EXPECT_EQ(solver.stats().import_duplicates, 1u);
  EXPECT_EQ(solver.stats().imported_clauses, 1u);
}

TEST(ClauseExchangeTest, ConcurrentPublishCollectIsSafe) {
  // Smoke test for the lock discipline (amplified by the TSan CI job):
  // several publishers and collectors hammer one exchange.
  ClauseExchange exchange(/*capacity=*/64);
  constexpr int kThreads = 4;
  constexpr int kRounds = 500;
  std::vector<int> ids;
  ids.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) ids.push_back(exchange.Register(1, 1));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&exchange, &ids, t] {
      std::vector<SharedClause> got;
      for (int r = 0; r < kRounds; ++r) {
        exchange.Publish(ids[static_cast<std::size_t>(t)],
                         C({t * kRounds + r + 1}));
        exchange.Collect(ids[static_cast<std::size_t>(t)], &got);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(exchange.totals().published, 1u * kThreads * kRounds);
}

TEST(ClauseExchangeTest, EvictionWraparoundStress) {
  // TSan target: a tiny ring forces every publisher to lap the buffer many
  // times, so writers constantly reclaim slots that readers are still
  // classifying. The seqlock stamps must keep every collected clause intact
  // and the eviction arithmetic exact across thousands of wraparounds.
  ClauseExchange exchange(/*capacity=*/8);
  constexpr int kPublishers = 3;
  constexpr int kCollectors = 3;
  constexpr int kRounds = 2000;
  std::vector<int> pub_ids, col_ids;
  for (int t = 0; t < kPublishers; ++t) pub_ids.push_back(exchange.Register(1, 1));
  for (int t = 0; t < kCollectors; ++t) col_ids.push_back(exchange.Register(1, 1));
  std::atomic<bool> corrupt{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kPublishers; ++t) {
    threads.emplace_back([&exchange, &pub_ids, t] {
      for (int r = 0; r < kRounds; ++r) {
        // Distinct positive literals per publisher/round: never a duplicate.
        const int base = (t * kRounds + r) * 3 + 1;
        exchange.Publish(pub_ids[static_cast<std::size_t>(t)],
                         C({base, base + 1, base + 2}));
      }
    });
  }
  for (int t = 0; t < kCollectors; ++t) {
    threads.emplace_back([&exchange, &col_ids, &corrupt, t] {
      std::vector<SharedClause> got;
      for (int r = 0; r < kRounds; ++r) {
        got.clear();
        exchange.Collect(col_ids[static_cast<std::size_t>(t)], &got);
        for (const SharedClause& sc : got) {
          // Published clauses are consecutive positive triples; anything
          // else is a torn read that leaked past the stamp recheck.
          if (sc.lits.size() != 3 || sc.lits[0].negated() ||
              sc.lits[1].var() != sc.lits[0].var() + 1 ||
              sc.lits[2].var() != sc.lits[0].var() + 2) {
            corrupt.store(true);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(corrupt.load());
  const ClauseExchange::Totals totals = exchange.totals();
  EXPECT_EQ(totals.published, 1u * kPublishers * kRounds);
  // Every accepted publish past the ring size overwrites a live slot.
  EXPECT_EQ(totals.evicted, totals.published - exchange.capacity());
}

TEST(ClauseExchangeTest, TornReadsAreDetectedNotDelivered) {
  // TSan + semantic target for the seqlock recheck: publishers rewrite the
  // same few slots as fast as possible with self-consistent clauses
  // (identical literals repeated kMaxSharedLits times) while readers
  // validate every delivery. A reader that loses the race must skip or
  // retry — observed via totals().torn_reads — but may never hand back a
  // clause mixing two publishes.
  ClauseExchange exchange(/*capacity=*/2);
  constexpr int kPublishers = 2;
  constexpr int kRounds = 4000;
  const int writer_a = exchange.Register(1, 1);
  const int writer_b = exchange.Register(1, 1);
  const int reader = exchange.Register(1, 1);
  std::atomic<bool> mixed{false};
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kPublishers; ++t) {
    threads.emplace_back([&exchange, t, writer_a, writer_b] {
      Clause clause;
      for (int r = 0; r < kRounds; ++r) {
        clause.clear();
        const int tag = t * kRounds + r + 1;
        for (std::size_t i = 0; i < ClauseExchange::kMaxSharedLits; ++i) {
          clause.push_back(Lit::Pos(tag));
        }
        exchange.Publish(t == 0 ? writer_a : writer_b, clause);
      }
    });
  }
  threads.emplace_back([&exchange, &mixed, &done, reader] {
    std::vector<SharedClause> got;
    while (!done.load(std::memory_order_relaxed)) {
      got.clear();
      exchange.Collect(reader, &got);
      for (const SharedClause& sc : got) {
        for (const Lit& l : sc.lits) {
          if (l != sc.lits[0]) mixed.store(true);
        }
      }
    }
  });
  threads[0].join();
  threads[1].join();
  done.store(true);
  threads[2].join();
  EXPECT_FALSE(mixed.load());
  EXPECT_EQ(exchange.totals().published, 1u * kPublishers * kRounds);
}

TEST(ClauseExchangeTest, LaggingCollectorFastForwards) {
  // A collector that slept through many evictions must land at the oldest
  // live entry, not spin through thousands of reclaimed sequence numbers.
  ClauseExchange exchange(/*capacity=*/4);
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  for (int r = 0; r < 100; ++r) exchange.Publish(a, C({r + 1}));
  std::vector<SharedClause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 4u);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].lits, C({97}));
  EXPECT_EQ(got[3].lits, C({100}));
  // Caught up: the next collect sees only what is published after it.
  exchange.Publish(a, C({101}));
  got.clear();
  EXPECT_EQ(exchange.Collect(b, &got), 1u);
  EXPECT_EQ(got[0].lits, C({101}));
}

TEST(ClauseExchangeTest, RegisterBeyondParticipantLimitFails) {
  ClauseExchange exchange;
  int last = -1;
  for (std::size_t i = 0; i < ClauseExchange::kMaxParticipants; ++i) {
    last = exchange.Register(1, 1);
  }
  EXPECT_EQ(last, static_cast<int>(ClauseExchange::kMaxParticipants) - 1);
  EXPECT_EQ(exchange.Register(1, 1), -1);
}

}  // namespace
}  // namespace satfr::sat
