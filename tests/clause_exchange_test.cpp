#include "sat/clause_exchange.h"

#include <gtest/gtest.h>

#include <thread>

namespace satfr::sat {
namespace {

Clause C(std::initializer_list<int> dimacs) {
  Clause clause;
  for (const int l : dimacs) {
    clause.push_back(l > 0 ? Lit::Pos(l - 1) : Lit::Neg(-l - 1));
  }
  return clause;
}

TEST(ClauseExchangeTest, RegisterAssignsSequentialIds) {
  ClauseExchange exchange;
  EXPECT_EQ(exchange.Register(1, 1), 0);
  EXPECT_EQ(exchange.Register(1, 1), 1);
  EXPECT_EQ(exchange.Register(2, 2), 2);
}

TEST(ClauseExchangeTest, NoSelfImport) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, C({1, 2}));
  std::vector<Clause> got;
  EXPECT_EQ(exchange.Collect(a, &got), 0u);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(exchange.Collect(b, &got), 1u);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], C({1, 2}));
}

TEST(ClauseExchangeTest, CursorOnlyReturnsNewClauses) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, C({1}));
  std::vector<Clause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 1u);
  EXPECT_EQ(exchange.Collect(b, &got), 0u);  // already seen
  exchange.Publish(a, C({2}));
  EXPECT_EQ(exchange.Collect(b, &got), 1u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1], C({2}));
}

TEST(ClauseExchangeTest, FullKeyMismatchBlocksNonUnits) {
  ClauseExchange exchange;
  const int a = exchange.Register(/*full_key=*/1, /*unit_key=*/9);
  const int b = exchange.Register(/*full_key=*/2, /*unit_key=*/9);
  exchange.Publish(a, C({1, 2}));  // non-unit: needs full compatibility
  exchange.Publish(a, C({3}));     // unit: needs only unit compatibility
  std::vector<Clause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 1u);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], C({3}));
}

TEST(ClauseExchangeTest, IncompatibleKeysExchangeNothing) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(2, 2);
  exchange.Publish(a, C({1, 2}));
  exchange.Publish(a, C({3}));
  std::vector<Clause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 0u);
  EXPECT_TRUE(got.empty());
}

TEST(ClauseExchangeTest, DuplicatesAreDropped) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, C({1, 2}));
  exchange.Publish(b, C({2, 1}));  // same clause, different literal order
  std::vector<Clause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 1u);
  EXPECT_EQ(exchange.totals().duplicates_dropped, 1u);
}

TEST(ClauseExchangeTest, CapacityEvictsOldest) {
  ClauseExchange exchange(/*capacity=*/2);
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, C({1}));
  exchange.Publish(a, C({2}));
  exchange.Publish(a, C({3}));  // evicts {1}
  std::vector<Clause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 2u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], C({2}));
  EXPECT_EQ(got[1], C({3}));
  EXPECT_EQ(exchange.totals().evicted, 1u);
}

TEST(ClauseExchangeTest, EmptyClauseIgnored) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, Clause{});
  std::vector<Clause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 0u);
  EXPECT_EQ(exchange.totals().published, 0u);
}

TEST(ClauseExchangeTest, TotalsTrackTraffic) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, C({1, 2}));
  exchange.Publish(b, C({-1, 3}));
  std::vector<Clause> got;
  exchange.Collect(a, &got);
  exchange.Collect(b, &got);
  const ClauseExchange::Totals totals = exchange.totals();
  EXPECT_EQ(totals.published, 2u);
  EXPECT_EQ(totals.collected, 2u);
}

TEST(ClauseExchangeTest, ConcurrentPublishCollectIsSafe) {
  // Smoke test for the lock discipline (amplified by the TSan CI job):
  // several publishers and collectors hammer one exchange.
  ClauseExchange exchange(/*capacity=*/64);
  constexpr int kThreads = 4;
  constexpr int kRounds = 500;
  std::vector<int> ids;
  ids.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) ids.push_back(exchange.Register(1, 1));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&exchange, &ids, t] {
      std::vector<Clause> got;
      for (int r = 0; r < kRounds; ++r) {
        exchange.Publish(ids[static_cast<std::size_t>(t)],
                         C({t * kRounds + r + 1}));
        exchange.Collect(ids[static_cast<std::size_t>(t)], &got);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(exchange.totals().published, 1u * kThreads * kRounds);
}

}  // namespace
}  // namespace satfr::sat
