#include "sat/clause_exchange.h"

#include <gtest/gtest.h>

#include <thread>

#include "sat/solver.h"

namespace satfr::sat {
namespace {

Clause C(std::initializer_list<int> dimacs) {
  Clause clause;
  for (const int l : dimacs) {
    clause.push_back(l > 0 ? Lit::Pos(l - 1) : Lit::Neg(-l - 1));
  }
  return clause;
}

TEST(ClauseExchangeTest, RegisterAssignsSequentialIds) {
  ClauseExchange exchange;
  EXPECT_EQ(exchange.Register(1, 1), 0);
  EXPECT_EQ(exchange.Register(1, 1), 1);
  EXPECT_EQ(exchange.Register(2, 2), 2);
}

TEST(ClauseExchangeTest, NoSelfImport) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, C({1, 2}));
  std::vector<SharedClause> got;
  EXPECT_EQ(exchange.Collect(a, &got), 0u);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(exchange.Collect(b, &got), 1u);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].lits, C({1, 2}));
}

TEST(ClauseExchangeTest, CursorOnlyReturnsNewClauses) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, C({1}));
  std::vector<SharedClause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 1u);
  EXPECT_EQ(exchange.Collect(b, &got), 0u);  // already seen
  exchange.Publish(a, C({2}));
  EXPECT_EQ(exchange.Collect(b, &got), 1u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1].lits, C({2}));
}

TEST(ClauseExchangeTest, FullKeyMismatchBlocksNonUnits) {
  ClauseExchange exchange;
  const int a = exchange.Register(/*full_key=*/1, /*unit_key=*/9);
  const int b = exchange.Register(/*full_key=*/2, /*unit_key=*/9);
  exchange.Publish(a, C({1, 2}));  // non-unit: needs full compatibility
  exchange.Publish(a, C({3}));     // unit: needs only unit compatibility
  std::vector<SharedClause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 1u);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].lits, C({3}));
}

TEST(ClauseExchangeTest, IncompatibleKeysExchangeNothing) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(2, 2);
  exchange.Publish(a, C({1, 2}));
  exchange.Publish(a, C({3}));
  std::vector<SharedClause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 0u);
  EXPECT_TRUE(got.empty());
}

TEST(ClauseExchangeTest, DuplicatesAreDropped) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, C({1, 2}));
  exchange.Publish(b, C({2, 1}));  // same clause, different literal order
  std::vector<SharedClause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 1u);
  EXPECT_EQ(exchange.totals().duplicates_dropped, 1u);
}

TEST(ClauseExchangeTest, CapacityEvictsOldest) {
  ClauseExchange exchange(/*capacity=*/2);
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, C({1}));
  exchange.Publish(a, C({2}));
  exchange.Publish(a, C({3}));  // evicts {1}
  std::vector<SharedClause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 2u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].lits, C({2}));
  EXPECT_EQ(got[1].lits, C({3}));
  EXPECT_EQ(exchange.totals().evicted, 1u);
}

TEST(ClauseExchangeTest, EmptyClauseIgnored) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, Clause{});
  std::vector<SharedClause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 0u);
  EXPECT_EQ(exchange.totals().published, 0u);
}

TEST(ClauseExchangeTest, TotalsTrackTraffic) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, C({1, 2}));
  exchange.Publish(b, C({-1, 3}));
  std::vector<SharedClause> got;
  exchange.Collect(a, &got);
  exchange.Collect(b, &got);
  const ClauseExchange::Totals totals = exchange.totals();
  EXPECT_EQ(totals.published, 2u);
  EXPECT_EQ(totals.collected, 2u);
}

TEST(ClauseExchangeTest, LbdTravelsWithTheClause) {
  ClauseExchange exchange;
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);
  exchange.Publish(a, C({1, 2, 3}), /*lbd=*/2);
  exchange.Publish(a, C({4, 5}));  // default: lbd unknown (0)
  std::vector<SharedClause> got;
  EXPECT_EQ(exchange.Collect(b, &got), 2u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].lbd, 2u);
  EXPECT_EQ(got[1].lbd, 0u);
}

TEST(ClauseExchangeTest, HashIgnoresLiteralOrder) {
  EXPECT_EQ(ClauseExchange::HashClause(C({1, -2, 3})),
            ClauseExchange::HashClause(C({3, 1, -2})));
  EXPECT_NE(ClauseExchange::HashClause(C({1, -2, 3})),
            ClauseExchange::HashClause(C({1, 2, 3})));
}

TEST(ClauseExchangeTest, SolverDropsReofferedClauseByLiteralHash) {
  // Regression: the exchange's duplicate window is bounded, so a clause a
  // solver already took can be re-offered later (evicted, then published
  // again — by another member, or as an echo of the solver's own export).
  // After the importer's arena GC the original copy lives at a different
  // address, so no clause-reference comparison can recognize the re-offer;
  // the solver must dedup by the order-insensitive literal hash and count
  // the drop in stats().import_duplicates.
  ClauseExchange exchange(/*capacity=*/1);
  const int a = exchange.Register(1, 1);
  const int b = exchange.Register(1, 1);

  Solver solver;
  Cnf base(/*num_vars=*/6);
  base.AddClause(C({1, 2, 3, 4, 5, 6}));
  ASSERT_TRUE(solver.AddCnf(base));
  solver.SetClauseExchange(&exchange, a);

  exchange.Publish(b, C({1, 2, 3}));
  EXPECT_EQ(solver.ImportClauses(), 1u);

  // Publish enough distinct clauses to overflow the exchange's own dedup
  // set (it resets past capacity * 4 hashes), so the permuted re-offer of
  // the first clause is accepted again under a fresh sequence number.
  exchange.Publish(b, C({4, 5}));
  exchange.Publish(b, C({-1, -2}));
  exchange.Publish(b, C({-3, -4}));
  exchange.Publish(b, C({5, 6}));
  exchange.Publish(b, C({-5, -6}));
  exchange.Publish(b, C({3, 1, 2}));
  ASSERT_EQ(exchange.totals().duplicates_dropped, 0u);

  // Capacity 1: only the re-offer is still in the window, and the solver's
  // literal-hash dedup must reject it.
  EXPECT_EQ(solver.ImportClauses(), 0u);
  EXPECT_EQ(solver.stats().import_duplicates, 1u);
  EXPECT_EQ(solver.stats().imported_clauses, 1u);
}

TEST(ClauseExchangeTest, ConcurrentPublishCollectIsSafe) {
  // Smoke test for the lock discipline (amplified by the TSan CI job):
  // several publishers and collectors hammer one exchange.
  ClauseExchange exchange(/*capacity=*/64);
  constexpr int kThreads = 4;
  constexpr int kRounds = 500;
  std::vector<int> ids;
  ids.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) ids.push_back(exchange.Register(1, 1));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&exchange, &ids, t] {
      std::vector<SharedClause> got;
      for (int r = 0; r < kRounds; ++r) {
        exchange.Publish(ids[static_cast<std::size_t>(t)],
                         C({t * kRounds + r + 1}));
        exchange.Collect(ids[static_cast<std::size_t>(t)], &got);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(exchange.totals().published, 1u * kThreads * kRounds);
}

}  // namespace
}  // namespace satfr::sat
