// Whole-pipeline integration tests: benchmark generation -> global routing
// -> DIMACS artifacts -> encodings -> SAT -> validated detailed routing,
// mirroring the paper's tool flow end to end.
#include <gtest/gtest.h>

#include <sstream>

#include "encode/registry.h"
#include "flow/conflict_graph.h"
#include "flow/min_width.h"
#include "flow/track_checker.h"
#include "graph/coloring_bounds.h"
#include "graph/dimacs_col.h"
#include "common/rng.h"
#include "netlist/mcnc_suite.h"
#include "netlist/netlist_io.h"
#include "route/greedy_track_assigner.h"
#include "route/global_router.h"
#include "route/routing_io.h"
#include "sat/dimacs.h"

namespace satfr {
namespace {

using fpga::Arch;
using fpga::DeviceGraph;

struct PipelineFixture {
  netlist::McncBenchmark bench;
  Arch arch;
  route::GlobalRouting routing;
  graph::Graph conflict;
  int peak;

  explicit PipelineFixture(const std::string& name)
      : bench(netlist::GenerateMcncBenchmark(name)),
        arch(bench.params.grid_size) {
    const DeviceGraph device(arch);
    routing = route::RouteGlobally(device, bench.netlist, bench.placement);
    conflict = flow::BuildConflictGraph(arch, routing);
    peak = route::PeakCongestion(arch, routing);
  }
};

TEST(IntegrationTest, SmallBenchmarksRouteAtOptimalWidth) {
  for (const std::string name : {"tiny", "9symml", "term1"}) {
    const PipelineFixture fx(name);
    flow::MinWidthOptions options;
    options.route.timeout_seconds = 120.0;
    const flow::MinWidthResult result =
        flow::FindMinimumWidthOnGraph(fx.conflict, fx.peak, options);
    ASSERT_GT(result.min_width, 0) << name;
    EXPECT_TRUE(result.proven_optimal) << name;
    EXPECT_GE(result.min_width, fx.peak) << name;
    std::string error;
    EXPECT_TRUE(flow::ValidateTrackAssignment(
        fx.arch, fx.routing, result.routable.tracks, result.min_width,
        &error))
        << name << ": " << error;
  }
}

TEST(IntegrationTest, DimacsArtifactsRoundTripThroughThePipeline) {
  // The paper's flow materializes a .col file, then a .cnf file. Check that
  // serializing and re-reading both does not change the answer.
  const PipelineFixture fx("tiny");
  std::ostringstream col_text;
  graph::WriteDimacsCol(fx.conflict, col_text);
  const auto conflict2 = graph::ParseDimacsColString(col_text.str());
  ASSERT_TRUE(conflict2.has_value());
  EXPECT_EQ(conflict2->Edges(), fx.conflict.Edges());

  const int width = graph::NumColorsUsed(graph::DsaturColoring(fx.conflict));
  const encode::EncodedColoring encoded = encode::EncodeColoring(
      *conflict2, width, encode::GetEncoding("ITE-linear-2+muldirect"));
  std::ostringstream cnf_text;
  sat::WriteDimacs(encoded.cnf, cnf_text);
  const auto cnf2 = sat::ParseDimacsString(cnf_text.str());
  ASSERT_TRUE(cnf2.has_value());

  sat::Solver solver;
  ASSERT_TRUE(solver.AddCnf(*cnf2));
  ASSERT_EQ(solver.Solve(), sat::SolveResult::kSat);
  const auto colors = encode::DecodeColoring(encoded, solver.model());
  EXPECT_TRUE(fx.conflict.IsProperColoring(colors));
}

TEST(IntegrationTest, UnroutableInstanceAgreesAcrossTable2Encodings) {
  const PipelineFixture fx("term1");
  ASSERT_GE(fx.peak, 2);
  for (const std::string& name : encode::Table2EncodingNames()) {
    flow::DetailedRouteOptions options;
    options.encoding = encode::GetEncoding(name);
    options.heuristic = symmetry::Heuristic::kS1;
    options.timeout_seconds = 120.0;
    const auto result =
        flow::RouteDetailedOnGraph(fx.conflict, fx.peak - 1, options);
    EXPECT_EQ(result.status, sat::SolveResult::kUnsat) << name;
  }
}

TEST(IntegrationTest, Table2BenchmarksHaveMeaningfulScale) {
  // The big-eight benchmarks must produce non-trivial conflict graphs (the
  // SAT instances of Table 2). Keep this cheap: no SAT solving here.
  for (const std::string& name : netlist::Table2BenchmarkNames()) {
    const PipelineFixture fx(name);
    EXPECT_GT(fx.conflict.num_vertices(), 50) << name;
    EXPECT_GT(fx.conflict.num_edges(), 100u) << name;
    EXPECT_GE(fx.peak, 3) << name;
    std::string error;
    EXPECT_TRUE(route::ValidateGlobalRouting(fx.arch, fx.bench.placement,
                                             fx.routing, &error))
        << name << ": " << error;
  }
}

TEST(IntegrationTest, FileDrivenPipelineMatchesInMemoryPipeline) {
  // Serialize the placed netlist and the global routing through their file
  // formats, re-load both, and check the detailed-routing answer (W*) is
  // identical to the in-memory flow — the SEGA-style file workflow.
  const PipelineFixture fx("tiny");
  const std::string dir = testing::TempDir();
  const std::string net_path = dir + "/satfr_it_tiny.net";
  const std::string route_path = dir + "/satfr_it_tiny.route";

  const auto bench = netlist::GenerateMcncBenchmark("tiny");
  ASSERT_TRUE(netlist::WritePlacedNetlistFile(bench.netlist, bench.placement,
                                              "tiny", net_path));
  ASSERT_TRUE(route::WriteGlobalRoutingFile(fx.arch, fx.routing, route_path));

  std::string error;
  const auto parsed_net = netlist::ParsePlacedNetlistFile(net_path, &error);
  ASSERT_TRUE(parsed_net.has_value()) << error;
  const auto parsed_route =
      route::ParseGlobalRoutingFile(route_path, &error);
  ASSERT_TRUE(parsed_route.has_value()) << error;
  ASSERT_EQ(parsed_route->grid_size, fx.arch.grid_size());
  ASSERT_TRUE(route::ValidateGlobalRouting(
      fx.arch, parsed_net->placement, parsed_route->routing, &error))
      << error;

  const graph::Graph conflict =
      flow::BuildConflictGraph(fx.arch, parsed_route->routing);
  const auto from_files = flow::FindMinimumWidthOnGraph(
      conflict, route::PeakCongestion(fx.arch, parsed_route->routing), {});
  const auto in_memory = flow::FindMinimumWidthOnGraph(
      fx.conflict, fx.peak, {});
  EXPECT_EQ(from_files.min_width, in_memory.min_width);
}

TEST(IntegrationTest, GeneratedCnfSizesScaleWithBenchmark) {
  const PipelineFixture small("tiny");
  const PipelineFixture large("term1");
  const auto encode_size = [](const PipelineFixture& fx) {
    const auto enc = encode::EncodeColoring(
        fx.conflict, 5, encode::GetEncoding("muldirect"));
    return enc.cnf.num_clauses();
  };
  EXPECT_LT(encode_size(small), encode_size(large));
}

// Randomized end-to-end property sweep: for fuzzed small circuits, the
// whole pipeline must uphold its invariants — routes validate, W* >= both
// lower bounds, the SAT routing checks out, the greedy baseline never beats
// the SAT optimum, and the W*-1 refutation passes the RUP checker.
class PipelineFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzzTest, InvariantsHold) {
  netlist::McncParams params;
  params.name = "fuzz_" + std::to_string(GetParam());
  Rng knobs(static_cast<std::uint64_t>(GetParam()) * 7919u + 13u);
  params.grid_size = static_cast<int>(4 + knobs.NextBelow(4));
  params.num_nets = static_cast<int>(8 + knobs.NextBelow(20));
  params.max_fanout = static_cast<int>(2 + knobs.NextBelow(4));
  params.locality = 0.5 + knobs.NextDouble() * 0.4;
  const netlist::McncBenchmark bench = GenerateMcncBenchmark(params);

  const Arch arch(params.grid_size);
  const DeviceGraph device(arch);
  const route::GlobalRouting routing =
      route::RouteGlobally(device, bench.netlist, bench.placement);
  std::string error;
  ASSERT_TRUE(
      route::ValidateGlobalRouting(arch, bench.placement, routing, &error))
      << error;

  const graph::Graph conflict = flow::BuildConflictGraph(arch, routing);
  const int peak = route::PeakCongestion(arch, routing);

  flow::MinWidthOptions options;
  options.route.timeout_seconds = 60.0;
  options.route.verify_unsat_proof = true;
  const flow::MinWidthResult result =
      flow::FindMinimumWidthOnGraph(conflict, peak, options);
  ASSERT_GT(result.min_width, 0);
  EXPECT_GE(result.min_width, peak);
  EXPECT_GE(result.min_width, graph::GreedyCliqueLowerBound(conflict));
  EXPECT_TRUE(flow::ValidateTrackAssignment(
      arch, routing, result.routable.tracks, result.min_width, &error))
      << error;
  if (result.min_width > 1) {
    ASSERT_TRUE(result.proven_optimal);
    EXPECT_TRUE(result.unroutable.proof_verified)
        << "RUP check failed on the W*-1 refutation";
  }
  const int greedy = route::GreedyMinimumWidth(conflict, peak);
  ASSERT_GT(greedy, 0);
  EXPECT_GE(greedy, result.min_width);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzzTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace satfr
