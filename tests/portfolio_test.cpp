#include <gtest/gtest.h>

#include "flow/conflict_graph.h"
#include "graph/coloring_bounds.h"
#include "netlist/mcnc_suite.h"
#include "portfolio/portfolio.h"
#include "route/global_router.h"
#include "test_util.h"

namespace satfr::portfolio {
namespace {

TEST(PortfolioTest, PaperPortfoliosAreWellFormed) {
  const auto two = PaperPortfolio2();
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].encoding_name, "ITE-linear-2+muldirect");
  EXPECT_EQ(two[0].heuristic, symmetry::Heuristic::kS1);
  EXPECT_EQ(two[1].encoding_name, "muldirect-3+muldirect");
  const auto three = PaperPortfolio3();
  ASSERT_EQ(three.size(), 3u);
  EXPECT_EQ(three[2].encoding_name, "ITE-linear-2+direct");
  EXPECT_EQ(three[2].DisplayName(), "ITE-linear-2+direct/s1");
}

TEST(PortfolioTest, EmptyPortfolioReturnsNoWinner) {
  const graph::Graph g(3);
  const PortfolioResult result = RunPortfolio(g, 2, {});
  EXPECT_EQ(result.winner, -1);
}

TEST(PortfolioTest, FindsSatAnswer) {
  Rng rng(111);
  const graph::Graph g = testutil::RandomGraph(rng, 12, 0.35);
  const int width = graph::NumColorsUsed(graph::DsaturColoring(g));
  const PortfolioResult result = RunPortfolio(g, width, PaperPortfolio3());
  ASSERT_GE(result.winner, 0);
  ASSERT_LT(result.winner, 3);
  EXPECT_EQ(result.result.status, sat::SolveResult::kSat);
  EXPECT_TRUE(g.IsProperColoring(result.result.tracks));
  EXPECT_EQ(result.statuses.size(), 3u);
  EXPECT_EQ(result.statuses[static_cast<std::size_t>(result.winner)],
            sat::SolveResult::kSat);
}

TEST(PortfolioTest, FindsUnsatAnswer) {
  Rng rng(222);
  const graph::Graph g = testutil::RandomGraph(rng, 10, 0.5);
  const int chi = graph::ChromaticNumberExact(g);
  ASSERT_GE(chi, 2);
  const PortfolioResult result =
      RunPortfolio(g, chi - 1, PaperPortfolio2());
  ASSERT_GE(result.winner, 0);
  EXPECT_EQ(result.result.status, sat::SolveResult::kUnsat);
}

TEST(PortfolioTest, AgreesWithSingleStrategy) {
  const netlist::McncBenchmark bench =
      netlist::GenerateMcncBenchmark("9symml");
  const fpga::Arch arch(bench.params.grid_size);
  const fpga::DeviceGraph device(arch);
  const route::GlobalRouting routing =
      route::RouteGlobally(device, bench.netlist, bench.placement);
  const graph::Graph conflict = flow::BuildConflictGraph(arch, routing);
  const int peak = route::PeakCongestion(arch, routing);

  // Single strategy on the unroutable width.
  flow::DetailedRouteOptions single;
  single.encoding = encode::GetEncoding("ITE-linear-2+muldirect");
  single.heuristic = symmetry::Heuristic::kS1;
  const auto single_result =
      flow::RouteDetailedOnGraph(conflict, peak - 1, single);
  ASSERT_EQ(single_result.status, sat::SolveResult::kUnsat);

  const PortfolioResult portfolio =
      RunPortfolio(conflict, peak - 1, PaperPortfolio3());
  ASSERT_GE(portfolio.winner, 0);
  EXPECT_EQ(portfolio.result.status, sat::SolveResult::kUnsat);
}

TEST(PortfolioTest, TimeoutYieldsNoWinner) {
  // Coloring K_13 with 12 colors is the pigeonhole principle: hard UNSAT,
  // and — without symmetry breaking — undecidable by level-0 propagation,
  // so no strategy can sneak an answer in before the ~zero deadline.
  graph::Graph g(13);
  for (graph::VertexId u = 0; u < 13; ++u) {
    for (graph::VertexId v = u + 1; v < 13; ++v) g.AddEdge(u, v);
  }
  std::vector<Strategy> strategies(2);
  strategies[0].encoding_name = "direct";
  strategies[0].heuristic = symmetry::Heuristic::kNone;
  strategies[1].encoding_name = "muldirect";
  strategies[1].heuristic = symmetry::Heuristic::kNone;
  const PortfolioResult result =
      RunPortfolio(g, 12, strategies, /*timeout_seconds=*/1e-6);
  EXPECT_EQ(result.winner, -1);
  EXPECT_EQ(result.result.status, sat::SolveResult::kUnknown);
  for (const auto status : result.statuses) {
    EXPECT_EQ(status, sat::SolveResult::kUnknown);
  }
}

TEST(PortfolioTest, WalkSatStrategyWinsSatRaces) {
  Rng rng(555);
  const graph::Graph g = testutil::RandomGraph(rng, 15, 0.3);
  const int width = graph::NumColorsUsed(graph::DsaturColoring(g));
  std::vector<Strategy> strategies(2);
  strategies[0].encoding_name = "muldirect";
  strategies[0].heuristic = symmetry::Heuristic::kS1;
  strategies[0].use_walksat = true;
  strategies[1].encoding_name = "ITE-linear-2+muldirect";
  strategies[1].heuristic = symmetry::Heuristic::kS1;
  const PortfolioResult result = RunPortfolio(g, width, strategies, 30.0);
  ASSERT_GE(result.winner, 0);
  EXPECT_EQ(result.result.status, sat::SolveResult::kSat);
  EXPECT_TRUE(g.IsProperColoring(result.result.tracks));
  EXPECT_NE(strategies[0].DisplayName().find("walksat"),
            std::string::npos);
}

TEST(PortfolioTest, WalkSatNeverWinsUnsatRaces) {
  Rng rng(556);
  const graph::Graph g = testutil::RandomGraph(rng, 10, 0.5);
  const int chi = graph::ChromaticNumberExact(g);
  ASSERT_GE(chi, 2);
  std::vector<Strategy> strategies(2);
  strategies[0].encoding_name = "muldirect";
  strategies[0].heuristic = symmetry::Heuristic::kS1;
  strategies[0].use_walksat = true;  // cannot answer UNSAT
  strategies[1].encoding_name = "ITE-linear-2+muldirect";
  strategies[1].heuristic = symmetry::Heuristic::kS1;
  const PortfolioResult result =
      RunPortfolio(g, chi - 1, strategies, 60.0);
  ASSERT_EQ(result.winner, 1);  // the CDCL member must deliver the proof
  EXPECT_EQ(result.result.status, sat::SolveResult::kUnsat);
}

TEST(PortfolioTest, DiversifiedPortfolioIsWellFormed) {
  const auto strategies = DiversifiedPortfolio(4);
  ASSERT_EQ(strategies.size(), 4u);
  const sat::SolverOptions defaults = sat::SolverOptions::SiegeLike();
  EXPECT_EQ(strategies[0].solver.seed, defaults.seed);
  for (const Strategy& s : strategies) {
    EXPECT_EQ(s.encoding_name, "ITE-linear-2+muldirect");
    EXPECT_EQ(s.heuristic, symmetry::Heuristic::kS1);
    EXPECT_FALSE(s.use_walksat);
  }
  // Diversified members must differ from each other in seed.
  for (std::size_t i = 1; i < strategies.size(); ++i) {
    for (std::size_t j = i + 1; j < strategies.size(); ++j) {
      EXPECT_NE(strategies[i].solver.seed, strategies[j].solver.seed);
    }
  }
}

TEST(PortfolioTest, SharingNeverChangesAnswers) {
  // The soundness property of the clause exchange: on the same instance, a
  // sharing portfolio must reach the same SAT/UNSAT verdict as a
  // non-sharing one. Random graphs on both sides of the threshold.
  Rng rng(20260806);
  for (int round = 0; round < 12; ++round) {
    const graph::Graph g =
        testutil::RandomGraph(rng, 14, /*edge_probability=*/0.45);
    const int k = 3 + static_cast<int>(rng.NextBelow(3));
    PortfolioOptions sharing;
    sharing.share_clauses = true;
    const PortfolioResult with = RunPortfolio(
        g, k, DiversifiedPortfolio(3), /*timeout_seconds=*/0.0, sharing);
    const PortfolioResult without =
        RunPortfolio(g, k, DiversifiedPortfolio(3));
    ASSERT_GE(with.winner, 0);
    ASSERT_GE(without.winner, 0);
    EXPECT_EQ(with.result.status, without.result.status)
        << "round " << round << " K=" << k;
  }
}

TEST(PortfolioTest, SharingReportsExchangeTraffic) {
  // K_13 with 12 colors under s1 symmetry breaking: UNSAT with real search,
  // so the members have learnts to trade.
  graph::Graph g(13);
  for (graph::VertexId u = 0; u < 13; ++u) {
    for (graph::VertexId v = u + 1; v < 13; ++v) g.AddEdge(u, v);
  }
  PortfolioOptions sharing;
  sharing.share_clauses = true;
  const PortfolioResult result = RunPortfolio(
      g, 12, DiversifiedPortfolio(3), /*timeout_seconds=*/0.0, sharing);
  ASSERT_GE(result.winner, 0);
  EXPECT_EQ(result.result.status, sat::SolveResult::kUnsat);
  ASSERT_EQ(result.strategy_stats.size(), 3u);
  std::uint64_t exported = 0;
  for (const sat::SolverStats& stats : result.strategy_stats) {
    exported += stats.exported_clauses;
  }
  EXPECT_GT(exported, 0u);
  EXPECT_GT(result.exchange_totals.published, 0u);
}

TEST(PortfolioTest, CubeMemberWinsRacesWithExactVerdicts) {
  // A portfolio whose cube member is the only complete strategy on both
  // sides: it must deliver SAT at the DSATUR width and UNSAT below the
  // clique bound, with the model validated by the portfolio's winner path.
  Rng rng(555);
  const graph::Graph g = testutil::RandomGraph(rng, 12, 0.4);
  const int chi = graph::ChromaticNumberExact(g);
  std::vector<Strategy> strategies(1);
  strategies[0].encoding_name = "ITE-linear-2+muldirect";
  strategies[0].heuristic = symmetry::Heuristic::kS1;
  strategies[0].cube_workers = 2;
  EXPECT_NE(strategies[0].DisplayName().find("cube x2"), std::string::npos);

  const PortfolioResult sat_side = RunPortfolio(g, chi, strategies);
  ASSERT_EQ(sat_side.winner, 0);
  EXPECT_EQ(sat_side.result.status, sat::SolveResult::kSat);
  EXPECT_TRUE(g.IsProperColoring(sat_side.result.tracks));
  if (chi > 1) {
    const PortfolioResult unsat_side = RunPortfolio(g, chi - 1, strategies);
    ASSERT_EQ(unsat_side.winner, 0);
    EXPECT_EQ(unsat_side.result.status, sat::SolveResult::kUnsat);
  }
}

TEST(PortfolioTest, CubeMemberAlongsideCdclAndWalksat) {
  // Mixed portfolio: CDCL + WalkSAT + cube racing the same SAT instance.
  Rng rng(666);
  const graph::Graph g = testutil::RandomGraph(rng, 12, 0.35);
  const int width = graph::NumColorsUsed(graph::DsaturColoring(g));
  std::vector<Strategy> strategies(3);
  strategies[0].encoding_name = "ITE-linear-2+muldirect";
  strategies[0].heuristic = symmetry::Heuristic::kS1;
  strategies[1] = strategies[0];
  strategies[1].use_walksat = true;
  strategies[2] = strategies[0];
  strategies[2].cube_workers = 2;
  const PortfolioResult result = RunPortfolio(g, width, strategies);
  ASSERT_GE(result.winner, 0);
  EXPECT_EQ(result.result.status, sat::SolveResult::kSat);
}

TEST(PortfolioTest, LosersAreCancelledQuickly) {
  // One fast strategy and the rest on a hard instance: wall time must be
  // close to the fast strategy's, far under any hard-solve time.
  Rng rng(444);
  const graph::Graph g = testutil::RandomGraph(rng, 14, 0.4);
  const int width = graph::NumColorsUsed(graph::DsaturColoring(g));
  const PortfolioResult result = RunPortfolio(g, width, PaperPortfolio3());
  ASSERT_GE(result.winner, 0);
  EXPECT_LT(result.wall_seconds, 30.0);
}

}  // namespace
}  // namespace satfr::portfolio
