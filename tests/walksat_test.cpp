#include <gtest/gtest.h>

#include "encode/csp_to_cnf.h"
#include "encode/registry.h"
#include "sat/brute_force.h"
#include "sat/walksat.h"
#include "test_util.h"

namespace satfr::sat {
namespace {

TEST(WalkSatTest, TrivialSat) {
  Cnf cnf(2);
  cnf.AddBinary(Lit::Pos(0), Lit::Pos(1));
  cnf.AddUnit(Lit::Neg(0));
  WalkSat solver(cnf);
  ASSERT_EQ(solver.Solve(), SolveResult::kSat);
  EXPECT_TRUE(cnf.IsSatisfiedBy(solver.model()));
}

TEST(WalkSatTest, EmptyFormulaIsSat) {
  Cnf cnf(3);
  WalkSat solver(cnf);
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
}

TEST(WalkSatTest, EmptyClauseGivesUnknown) {
  Cnf cnf(1);
  cnf.AddClause({});
  WalkSat solver(cnf);
  EXPECT_EQ(solver.Solve(), SolveResult::kUnknown);
}

TEST(WalkSatTest, NeverClaimsUnsat) {
  // On an UNSAT formula the solver must give up, not lie.
  Cnf cnf(1);
  cnf.AddUnit(Lit::Pos(0));
  cnf.AddUnit(Lit::Neg(0));
  WalkSatOptions options;
  options.max_tries = 3;
  options.flips_per_try = 1000;
  WalkSat solver(cnf, options);
  EXPECT_EQ(solver.Solve(), SolveResult::kUnknown);
}

TEST(WalkSatTest, SolvesSatisfiableRandomFormulas) {
  Rng rng(97);
  int solved = 0;
  int satisfiable = 0;
  for (int i = 0; i < 25; ++i) {
    const Cnf cnf = testutil::RandomCnf(rng, 15, 30, 4);
    if (!SolveByDpll(cnf).has_value()) continue;
    ++satisfiable;
    WalkSatOptions options;
    options.max_tries = 20;
    options.flips_per_try = 20000;
    WalkSat solver(cnf, options);
    if (solver.Solve() == SolveResult::kSat) {
      EXPECT_TRUE(cnf.IsSatisfiedBy(solver.model()));
      ++solved;
    }
  }
  ASSERT_GT(satisfiable, 0);
  // Local search should crack essentially all small satisfiable instances.
  EXPECT_EQ(solved, satisfiable);
}

TEST(WalkSatTest, SolvesRoutableColoringInstances) {
  // The use case from the paper: satisfiable formulas from routable
  // configurations, here a coloring of a random graph at its DSATUR width.
  Rng rng(98);
  const graph::Graph g = testutil::RandomGraph(rng, 20, 0.3);
  const encode::EncodedColoring enc =
      EncodeColoring(g, 8, encode::GetEncoding("muldirect"));
  WalkSat solver(enc.cnf);
  ASSERT_EQ(solver.Solve(Deadline::After(30.0)), SolveResult::kSat);
  const auto colors = DecodeColoring(enc, solver.model());
  EXPECT_TRUE(g.IsProperColoring(colors));
}

TEST(WalkSatTest, DeadlineRespected) {
  // A hard (unsatisfiable) instance with an immediate deadline.
  const Cnf cnf = testutil::PigeonholeCnf(8);
  WalkSat solver(cnf);
  EXPECT_EQ(solver.Solve(Deadline::After(0.001)), SolveResult::kUnknown);
  EXPECT_GE(solver.stats().tries, 1u);
}

TEST(WalkSatTest, StatsAccumulate) {
  Rng rng(99);
  const Cnf cnf = testutil::RandomCnf(rng, 12, 30, 3);
  WalkSat solver(cnf);
  (void)solver.Solve(Deadline::After(0.2));
  EXPECT_GE(solver.stats().tries, 1u);
}

}  // namespace
}  // namespace satfr::sat
