// Quickstart: the whole SAT-based detailed-routing flow in ~60 lines.
//
//   1. Generate a small placed benchmark circuit.
//   2. Global-route it (negotiated congestion).
//   3. Ask the SAT-based detailed router for a track assignment.
//   4. Validate the result and print it.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "flow/detailed_router.h"
#include "flow/min_width.h"
#include "flow/track_checker.h"
#include "netlist/mcnc_suite.h"
#include "route/global_router.h"

int main() {
  using namespace satfr;

  // 1. A small synthetic MCNC-style benchmark: placed netlist on a 4x4 FPGA.
  const netlist::McncBenchmark bench = netlist::GenerateMcncBenchmark("tiny");
  std::printf("circuit 'tiny': %d blocks, %d nets on a %dx%d FPGA\n",
              bench.netlist.num_blocks(), bench.netlist.num_nets(),
              bench.params.grid_size, bench.params.grid_size);

  // 2. Fixed global routing (this is the input of the paper's problem).
  const fpga::Arch arch(bench.params.grid_size);
  const fpga::DeviceGraph device(arch);
  const route::GlobalRouting routing =
      route::RouteGlobally(device, bench.netlist, bench.placement);
  std::printf("global routing: %zu 2-pin nets, wirelength %zu, peak channel "
              "congestion %d\n",
              routing.NumTwoPinNets(), routing.TotalWirelength(),
              route::PeakCongestion(arch, routing));

  // 3. SAT-based detailed routing at the minimum channel width, with the
  //    paper's best strategy: encoding ITE-linear-2+muldirect + heuristic s1.
  flow::MinWidthOptions options;
  options.route.encoding = encode::GetEncoding("ITE-linear-2+muldirect");
  options.route.heuristic = symmetry::Heuristic::kS1;
  const flow::MinWidthResult result = flow::FindMinimumWidth(arch, routing);
  if (result.min_width < 0) {
    std::printf("search failed (timeout)\n");
    return 1;
  }
  std::printf("minimum channel width W* = %d (optimality %s: W*-1 proven "
              "unroutable)\n",
              result.min_width, result.proven_optimal ? "PROVEN" : "open");

  // 4. Validate and show the detailed routing.
  std::string error;
  if (!flow::ValidateTrackAssignment(arch, routing, result.routable.tracks,
                                     result.min_width, &error)) {
    std::printf("BUG: invalid track assignment: %s\n", error.c_str());
    return 1;
  }
  std::printf("track assignment (2-pin net -> track):\n");
  for (std::size_t i = 0; i < result.routable.tracks.size(); ++i) {
    const route::TwoPinNet& net = routing.two_pin_nets[i];
    std::printf("  net %2d (%s): blk%d -> blk%d on track %d\n",
                static_cast<int>(i),
                bench.netlist.net(net.parent).name.c_str(), net.source,
                net.sink, result.routable.tracks[i]);
  }
  std::printf("all constraints satisfied — detailed routing is valid.\n");
  return 0;
}
