// Exports the two intermediate artifacts of the paper's tool flow
// (§1, contribution 1): the conflict graph as DIMACS .col and the encoded
// SAT instance as DIMACS .cnf, so external graph-coloring or SAT tools can
// be plugged into the pipeline.
//
// Usage:  ./build/examples/dimacs_export [benchmark] [width] [encoding]
// Writes <benchmark>.col and <benchmark>_w<width>_<encoding>.cnf in the
// current directory.
#include <cstdio>
#include <fstream>
#include <string>

#include "encode/csp_to_cnf.h"
#include "encode/registry.h"
#include "flow/conflict_graph.h"
#include "graph/dimacs_col.h"
#include "netlist/mcnc_suite.h"
#include "route/global_router.h"
#include "sat/clause_sink.h"
#include "symmetry/symmetry.h"

int main(int argc, char** argv) {
  using namespace satfr;
  const std::string benchmark = argc > 1 ? argv[1] : "tiny";
  const std::string encoding = argc > 3 ? argv[3] : "muldirect";

  const netlist::McncBenchmark bench =
      netlist::GenerateMcncBenchmark(benchmark);
  const fpga::Arch arch(bench.params.grid_size);
  const fpga::DeviceGraph device(arch);
  const route::GlobalRouting routing =
      route::RouteGlobally(device, bench.netlist, bench.placement);
  const graph::Graph conflict = flow::BuildConflictGraph(arch, routing);
  const int width =
      argc > 2 ? std::atoi(argv[2]) : route::PeakCongestion(arch, routing);

  const std::string col_path = benchmark + ".col";
  if (!graph::WriteDimacsColFile(
          conflict, col_path,
          {"satfr conflict graph for benchmark " + benchmark,
           "vertices are 2-pin nets; edges are track-exclusivity "
           "constraints"})) {
    std::printf("cannot write %s\n", col_path.c_str());
    return 1;
  }
  std::printf("wrote %s  (%d vertices, %zu edges)\n", col_path.c_str(),
              conflict.num_vertices(), conflict.num_edges());

  const auto sequence = symmetry::SymmetrySequence(
      conflict, width, symmetry::Heuristic::kS1);
  const std::string cnf_path =
      benchmark + "_w" + std::to_string(width) + "_" + encoding + ".cnf";
  // Stream the encoder straight to disk: the CNF is written clause by
  // clause (header back-patched at the end) and never held in memory.
  std::ofstream cnf_out(cnf_path, std::ios::binary);
  if (!cnf_out) {
    std::printf("cannot write %s\n", cnf_path.c_str());
    return 1;
  }
  sat::StreamingDimacsSink sink(
      cnf_out, {"satfr: " + benchmark + " at W=" + std::to_string(width) +
                    " via encoding " + encoding + " + s1",
                "satisfiable iff a detailed routing with W tracks exists"});
  const encode::ColoringLayout layout = encode::EncodeColoringToSink(
      conflict, width, encode::GetEncoding(encoding), sequence, sink);
  if (!sink.Finish()) {
    std::printf("cannot write %s\n", cnf_path.c_str());
    return 1;
  }
  std::printf("wrote %s  (%d vars, %llu clauses: %zu structural, %zu "
              "conflict, %zu symmetry)\n",
              cnf_path.c_str(), sink.num_vars(),
              static_cast<unsigned long long>(sink.num_clauses()),
              layout.stats.structural_clauses,
              layout.stats.conflict_clauses, layout.stats.symmetry_clauses);
  return 0;
}
