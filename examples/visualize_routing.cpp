// Renders the routing fabric of a benchmark as ASCII art: first the
// per-segment congestion of the global routing (distinct multi-pin nets per
// channel segment — the quantity that lower-bounds the channel width), then
// the track occupancy of the SAT detailed routing at W*.
//
// Usage:  ./build/examples/visualize_routing [benchmark]
#include <cstdio>
#include <string>
#include <vector>

#include "flow/min_width.h"
#include "fpga/render.h"
#include "netlist/mcnc_suite.h"
#include "route/global_router.h"

int main(int argc, char** argv) {
  using namespace satfr;
  const std::string benchmark = argc > 1 ? argv[1] : "tiny";

  const netlist::McncBenchmark bench =
      netlist::GenerateMcncBenchmark(benchmark);
  const fpga::Arch arch(bench.params.grid_size);
  const fpga::DeviceGraph device(arch);
  const route::GlobalRouting routing =
      route::RouteGlobally(device, bench.netlist, bench.placement);

  std::printf("benchmark %s on a %dx%d array\n\n", benchmark.c_str(),
              arch.grid_size(), arch.grid_size());
  std::printf("channel congestion (distinct nets per segment):\n%s\n",
              fpga::RenderSegmentValues(
                  arch, route::SegmentParentUsage(arch, routing))
                  .c_str());

  flow::MinWidthOptions options;
  options.route.encoding = encode::GetEncoding("ITE-linear-2+muldirect");
  options.route.heuristic = symmetry::Heuristic::kS1;
  options.route.timeout_seconds = 120.0;
  const flow::MinWidthResult result = flow::FindMinimumWidth(arch, routing,
                                                             options);
  if (result.min_width < 0) {
    std::printf("W* search timed out\n");
    return 1;
  }
  std::printf("detailed routing at W* = %d: tracks in use per segment:\n",
              result.min_width);
  // Count occupied tracks per segment under the SAT assignment.
  std::vector<int> occupied(static_cast<std::size_t>(arch.num_segments()),
                            0);
  std::vector<std::vector<bool>> track_used(
      static_cast<std::size_t>(arch.num_segments()),
      std::vector<bool>(static_cast<std::size_t>(result.min_width), false));
  for (std::size_t i = 0; i < routing.routes.size(); ++i) {
    const int track = result.routable.tracks[i];
    for (const fpga::SegmentIndex seg : routing.routes[i]) {
      auto& used = track_used[static_cast<std::size_t>(seg)];
      if (!used[static_cast<std::size_t>(track)]) {
        used[static_cast<std::size_t>(track)] = true;
        ++occupied[static_cast<std::size_t>(seg)];
      }
    }
  }
  std::printf("%s\n", fpga::RenderSegmentValues(arch, occupied).c_str());
  std::printf("(legend: '.' idle, digits = used tracks, '*' >= 10)\n");
  return 0;
}
