// Parallel portfolio demo (§6): run the paper's 3-strategy portfolio
// against the best single strategy on an unroutable configuration, with
// the losing runs cancelled as soon as the winner returns.
//
// Usage:  ./build/examples/portfolio_demo [benchmark]
#include <cstdio>
#include <string>

#include "flow/conflict_graph.h"
#include "flow/min_width.h"
#include "netlist/mcnc_suite.h"
#include "portfolio/portfolio.h"
#include "route/global_router.h"

int main(int argc, char** argv) {
  using namespace satfr;
  const std::string benchmark = argc > 1 ? argv[1] : "term1";

  const netlist::McncBenchmark bench =
      netlist::GenerateMcncBenchmark(benchmark);
  const fpga::Arch arch(bench.params.grid_size);
  const fpga::DeviceGraph device(arch);
  const route::GlobalRouting routing =
      route::RouteGlobally(device, bench.netlist, bench.placement);
  const graph::Graph conflict = flow::BuildConflictGraph(arch, routing);

  flow::MinWidthOptions mw;
  mw.route.encoding = encode::GetEncoding("ITE-linear-2+muldirect");
  mw.route.heuristic = symmetry::Heuristic::kS1;
  mw.route.timeout_seconds = 120.0;
  const flow::MinWidthResult mw_result = flow::FindMinimumWidthOnGraph(
      conflict, route::PeakCongestion(arch, routing), mw);
  if (mw_result.min_width < 2) {
    std::printf("no unroutable configuration for %s\n", benchmark.c_str());
    return 1;
  }
  const int width = mw_result.min_width - 1;
  std::printf("benchmark %s: proving unroutability at W = %d\n\n",
              benchmark.c_str(), width);

  // Best single strategy.
  flow::DetailedRouteOptions single;
  single.encoding = encode::GetEncoding("ITE-linear-2+muldirect");
  single.heuristic = symmetry::Heuristic::kS1;
  single.timeout_seconds = 120.0;
  const auto single_result =
      flow::RouteDetailedOnGraph(conflict, width, single);
  std::printf("best single strategy (ITE-linear-2+muldirect/s1): %s in "
              "%.3fs\n",
              sat::ToString(single_result.status),
              single_result.TotalSeconds());

  // The paper's 3-strategy portfolio.
  const auto strategies = portfolio::PaperPortfolio3();
  const portfolio::PortfolioResult result =
      portfolio::RunPortfolio(conflict, width, strategies, 120.0);
  if (result.winner < 0) {
    std::printf("portfolio timed out\n");
    return 1;
  }
  std::printf("portfolio of %zu strategies: %s in %.3fs — winner: %s\n",
              strategies.size(), sat::ToString(result.result.status),
              result.wall_seconds,
              strategies[static_cast<std::size_t>(result.winner)]
                  .DisplayName()
                  .c_str());
  std::printf("\n(On a single-core machine the portfolio time-slices and "
              "the gain shrinks;\nthe paper measured 2.30x on an idle "
              "multicore CPU.)\n");
  return 0;
}
