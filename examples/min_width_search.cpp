// Minimum-channel-width search with an unroutability proof — the paper's
// headline capability (§1: SAT "can prove the unroutability of a global
// routing for a particular number of tracks per channel", guaranteeing
// optimality of the found width).
//
// Usage:  ./build/examples/min_width_search [benchmark] [encoding] [b1|s1|-]
// e.g.    ./build/examples/min_width_search alu2 ITE-linear-2+muldirect s1
#include <cstdio>
#include <string>

#include "flow/conflict_graph.h"
#include "flow/min_width.h"
#include "graph/coloring_bounds.h"
#include "netlist/mcnc_suite.h"
#include "route/global_router.h"

int main(int argc, char** argv) {
  using namespace satfr;
  const std::string benchmark = argc > 1 ? argv[1] : "9symml";
  const std::string encoding = argc > 2 ? argv[2] : "ITE-linear-2+muldirect";
  const std::string heuristic = argc > 3 ? argv[3] : "s1";

  const netlist::McncBenchmark bench =
      netlist::GenerateMcncBenchmark(benchmark);
  const fpga::Arch arch(bench.params.grid_size);
  const fpga::DeviceGraph device(arch);
  const route::GlobalRouting routing =
      route::RouteGlobally(device, bench.netlist, bench.placement);
  const graph::Graph conflict = flow::BuildConflictGraph(arch, routing);

  std::printf("benchmark %s: conflict graph with %d vertices (2-pin nets), "
              "%zu edges\n",
              benchmark.c_str(), conflict.num_vertices(),
              conflict.num_edges());
  const int lower = route::PeakCongestion(arch, routing);
  const int upper = graph::NumColorsUsed(graph::DsaturColoring(conflict));
  std::printf("bounds before SAT: congestion lower bound %d, DSATUR upper "
              "bound %d\n",
              lower, upper);

  flow::MinWidthOptions options;
  options.route.encoding = encode::GetEncoding(encoding);
  options.route.heuristic = symmetry::HeuristicFromName(heuristic);
  options.route.timeout_seconds = 300.0;
  const flow::MinWidthResult result =
      flow::FindMinimumWidthOnGraph(conflict, lower, options);
  if (result.min_width < 0) {
    std::printf("timed out before establishing W*\n");
    return 1;
  }

  std::printf("\nW* = %d  (strategy: %s / %s)\n", result.min_width,
              encoding.c_str(), heuristic.c_str());
  std::printf("  routable at W*:    SAT   in %.3fs (%llu conflicts)\n",
              result.routable.TotalSeconds(),
              static_cast<unsigned long long>(
                  result.routable.solver_stats.conflicts));
  if (result.proven_optimal && result.min_width > 1) {
    std::printf("  unroutable at W*-1: UNSAT in %.3fs (%llu conflicts) — "
                "optimality proven\n",
                result.unroutable.TotalSeconds(),
                static_cast<unsigned long long>(
                    result.unroutable.solver_stats.conflicts));
  } else if (result.min_width == 1) {
    std::printf("  W* = 1 is trivially optimal\n");
  }
  return 0;
}
