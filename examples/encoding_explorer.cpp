// Compares every registered encoding (optionally with b1/s1 symmetry
// breaking) on one benchmark instance — a per-instance miniature of the
// paper's Table 2, including CNF sizes.
//
// Usage:  ./build/examples/encoding_explorer [benchmark] [width]
//         width defaults to W*-1 (the unroutable configuration).
#include <cstdio>
#include <string>

#include "flow/conflict_graph.h"
#include "flow/detailed_router.h"
#include "flow/min_width.h"
#include "netlist/mcnc_suite.h"
#include "route/global_router.h"

int main(int argc, char** argv) {
  using namespace satfr;
  const std::string benchmark = argc > 1 ? argv[1] : "term1";

  const netlist::McncBenchmark bench =
      netlist::GenerateMcncBenchmark(benchmark);
  const fpga::Arch arch(bench.params.grid_size);
  const fpga::DeviceGraph device(arch);
  const route::GlobalRouting routing =
      route::RouteGlobally(device, bench.netlist, bench.placement);
  const graph::Graph conflict = flow::BuildConflictGraph(arch, routing);

  // Establish W* so the default width is the unroutable configuration.
  flow::MinWidthOptions mw;
  mw.route.encoding = encode::GetEncoding("ITE-linear-2+muldirect");
  mw.route.heuristic = symmetry::Heuristic::kS1;
  mw.route.timeout_seconds = 120.0;
  const flow::MinWidthResult mw_result = flow::FindMinimumWidthOnGraph(
      conflict, route::PeakCongestion(arch, routing), mw);
  if (mw_result.min_width < 0) {
    std::printf("could not establish W* in time\n");
    return 1;
  }
  const int width =
      argc > 2 ? std::atoi(argv[2]) : mw_result.min_width - 1;
  if (width < 1) {
    std::printf("width %d is degenerate; pass an explicit width\n", width);
    return 1;
  }

  std::printf("benchmark %s, W* = %d, solving at W = %d (%s)\n\n",
              benchmark.c_str(), mw_result.min_width, width,
              width < mw_result.min_width ? "unroutable" : "routable");
  std::printf("%-26s %4s  %8s  %10s  %10s  %8s  %10s\n", "encoding", "sym",
              "result", "vars", "clauses", "time[s]", "conflicts");

  for (const encode::EncodingSpec& spec : encode::AllEncodings()) {
    for (const symmetry::Heuristic h :
         {symmetry::Heuristic::kNone, symmetry::Heuristic::kB1,
          symmetry::Heuristic::kS1}) {
      flow::DetailedRouteOptions options;
      options.encoding = spec;
      options.heuristic = h;
      options.timeout_seconds = 30.0;
      const flow::DetailedRouteResult result =
          flow::RouteDetailedOnGraph(conflict, width, options);
      std::printf("%-26s %4s  %8s  %10d  %10zu  %8.3f  %10llu\n",
                  spec.name.c_str(), symmetry::ToString(h),
                  sat::ToString(result.status), result.cnf_vars,
                  result.cnf_clauses, result.TotalSeconds(),
                  static_cast<unsigned long long>(
                      result.solver_stats.conflicts));
      std::fflush(stdout);
    }
  }
  return 0;
}
