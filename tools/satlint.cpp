// satlint — static analysis over the flow's artifacts: DIMACS CNF files,
// DIMACS .col conflict graphs, and in-process encoding runs.
//
//   satlint passes                    list the registered passes
//   satlint cnf <file.cnf>            lint a DIMACS CNF file
//   satlint col <file.col> [opts]     lint a DIMACS graph; with --width K
//                                     also encode it and lint the CNF
//   satlint encode <benchmark> [opts] build the MCNC benchmark's conflict
//                                     graph, encode, and lint the result
//   satlint report <file.jsonl>       lint a `satfr --report` run report
//                                     (telemetry-consistency: observer
//                                     totals vs solver-window stats;
//                                     exchange-conservation: clause-
//                                     exchange reader ledger)
//   satlint sources <file...>         scan source files (mc-coverage: the
//                                     lock-free layers must route atomics
//                                     and mutexes through the mc:: shim)
//
// Options:
//   --encoding NAME|all|evaluated
//                         encoding to check ("all" = every registered
//                         encoding from encode::registry, "evaluated" = the
//                         paper's 14; default ITE-linear-2+muldirect)
//   --sym b1|s1|none      symmetry-breaking heuristic (default s1)
//   --width K             colors / tracks (default: peak congestion)
//   --grouped             (col/encode) encode through the net-grouped
//                         streaming path (encode::EncodeColoringGrouped)
//                         instead of the flat one, and run the
//                         net-group-hygiene pass over the activation-
//                         literal structure
//   --json                machine-readable report
//   --disable PASS        disable a pass by name (repeatable)
//   --severity PASS=LVL   force a pass to info|warning|error (repeatable)
//
// Exit status: 0 = no error-severity findings, 1 = errors found,
// 2 = usage or I/O problem.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/runner.h"
#include "encode/csp_to_cnf.h"
#include "encode/net_group.h"
#include "obs/run_report.h"
#include "encode/registry.h"
#include "flow/conflict_graph.h"
#include "fpga/device_graph.h"
#include "graph/dimacs_col.h"
#include "netlist/mcnc_suite.h"
#include "route/global_router.h"
#include "route/global_routing.h"
#include "sat/dimacs.h"
#include "symmetry/symmetry.h"

namespace {

using namespace satfr;

struct LintOptions {
  std::string encoding = "ITE-linear-2+muldirect";
  std::string sym = "s1";
  int width = -1;
  bool json = false;
  bool grouped = false;
  std::vector<std::string> disabled;
  std::vector<std::pair<std::string, analysis::Severity>> severities;
  std::vector<std::string> positional;
};

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: satlint <passes|cnf|col|encode|report|sources>"
               " [args]\n"
               "  satlint cnf <file.cnf>\n"
               "  satlint col <file.col> [--width K]\n"
               "  satlint encode <benchmark> [--width K]\n"
               "  satlint report <file.jsonl>\n"
               "  satlint sources <file...>\n"
               "options: --encoding NAME|all|evaluated  --sym b1|s1|none"
               "  --json  --grouped\n"
               "         --disable PASS  --severity PASS=info|warning|error\n"
               "  see the header of tools/satlint.cpp or README.md\n");
  std::exit(2);
}

std::optional<analysis::Severity> ParseSeverity(const std::string& name) {
  if (name == "info") return analysis::Severity::kInfo;
  if (name == "warning") return analysis::Severity::kWarning;
  if (name == "error") return analysis::Severity::kError;
  return std::nullopt;
}

LintOptions ParseArgs(int argc, char** argv) {
  LintOptions opts;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (arg == "--encoding") {
      opts.encoding = next();
    } else if (arg == "--sym") {
      opts.sym = next();
    } else if (arg == "--width") {
      opts.width = std::atoi(next().c_str());
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--grouped") {
      opts.grouped = true;
    } else if (arg == "--disable") {
      opts.disabled.push_back(next());
    } else if (arg == "--severity") {
      const std::string spec = next();
      const std::size_t eq = spec.find('=');
      const auto severity =
          eq == std::string::npos
              ? std::nullopt
              : ParseSeverity(spec.substr(eq + 1));
      if (!severity) {
        std::fprintf(stderr, "bad --severity '%s'\n", spec.c_str());
        Usage();
      }
      opts.severities.emplace_back(spec.substr(0, eq), *severity);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      Usage();
    } else {
      opts.positional.push_back(arg);
    }
  }
  return opts;
}

analysis::AnalysisRunner MakeRunner(const LintOptions& opts) {
  analysis::AnalysisRunner runner = analysis::MakeDefaultRunner();
  for (const std::string& pass : opts.disabled) {
    analysis::PassConfig config;
    config.enabled = false;
    if (!runner.Configure(pass, config)) {
      std::fprintf(stderr, "unknown pass '%s'\n", pass.c_str());
      Usage();
    }
  }
  for (const auto& [pass, severity] : opts.severities) {
    analysis::PassConfig config;
    config.severity = severity;
    if (!runner.Configure(pass, config)) {
      std::fprintf(stderr, "unknown pass '%s'\n", pass.c_str());
      Usage();
    }
  }
  return runner;
}

/// Runs the pipeline, prints the report, and returns the exit status.
int RunAndReport(const analysis::AnalysisRunner& runner,
                 const analysis::AnalysisInput& input,
                 const LintOptions& opts, const std::string& banner) {
  const analysis::AnalysisReport report = runner.Run(input);
  if (!banner.empty() && !opts.json) std::printf("== %s\n", banner.c_str());
  std::fputs((opts.json ? analysis::FormatJson(report)
                        : analysis::FormatText(report))
                 .c_str(),
             stdout);
  return report.HasErrors() ? 1 : 0;
}

/// Encodings selected by --encoding: "all" covers every registered encoding
/// (derived from the registry, so extensions are linted automatically),
/// "evaluated" the paper's 14, anything else a single name.
std::vector<std::string> SelectedEncodings(const std::string& encoding) {
  if (encoding == "all") return encode::AllEncodingNames();
  if (encoding == "evaluated") return encode::EvaluatedEncodingNames();
  return {encoding};
}

/// Encodes `g` with every requested encoding and lints each result.
int LintEncodings(const graph::Graph& g, int width, const LintOptions& opts,
                  const route::GlobalRouting* routing) {
  const std::vector<std::string> names = SelectedEncodings(opts.encoding);
  const analysis::AnalysisRunner runner = MakeRunner(opts);
  const std::vector<graph::VertexId> sequence = symmetry::SymmetrySequence(
      g, width, symmetry::HeuristicFromName(opts.sym));
  int status = 0;
  for (const std::string& name : names) {
    const auto spec = encode::FindEncoding(name);
    if (!spec) {
      std::fprintf(stderr, "unknown encoding '%s'\n", name.c_str());
      return 2;
    }
    analysis::AnalysisInput input;
    input.conflict_graph = &g;
    input.spec = &*spec;
    input.symmetry_sequence = &sequence;
    input.routing = routing;
    std::string banner =
        name + " K=" + std::to_string(width) + " sym=" + opts.sym;
    // Both arms materialize into `cnf`/`encoded` declared out here so the
    // pointers stay valid through RunAndReport.
    sat::Cnf grouped_cnf;
    std::optional<encode::EncodedColoring> encoded;
    encode::NetGroupTable group_table;
    if (opts.grouped) {
      sat::CnfCollectorSink collector(grouped_cnf);
      encode::NetGroupedSink grouped(collector);
      encode::EncodeColoringGrouped(g, width, *spec, sequence, grouped);
      grouped.Finish();
      group_table = grouped.table();
      input.cnf = &grouped_cnf;
      input.net_groups = &group_table;
      banner += " grouped";
    } else {
      encoded.emplace(encode::EncodeColoring(g, width, *spec, sequence));
      input.cnf = &encoded->cnf;
      input.encoded = &*encoded;
    }
    if (RunAndReport(runner, input, opts, banner) != 0) status = 1;
  }
  return status;
}

int CmdPasses() {
  const analysis::AnalysisRunner runner = analysis::MakeDefaultRunner();
  for (const auto& pass : runner.passes()) {
    std::printf("%-26s %-8s %s\n",
                std::string(pass->name()).c_str(),
                analysis::ToString(pass->default_severity()),
                std::string(pass->description()).c_str());
  }
  return 0;
}

int CmdCnf(const LintOptions& opts) {
  if (opts.positional.empty()) Usage();
  const auto cnf = sat::ParseDimacsFile(opts.positional[0]);
  if (!cnf) {
    std::fprintf(stderr, "cannot parse '%s'\n", opts.positional[0].c_str());
    return 2;
  }
  analysis::AnalysisInput input;
  input.cnf = &*cnf;
  return RunAndReport(MakeRunner(opts), input, opts, opts.positional[0]);
}

int CmdCol(const LintOptions& opts) {
  if (opts.positional.empty()) Usage();
  const auto g = graph::ParseDimacsColFile(opts.positional[0]);
  if (!g) {
    std::fprintf(stderr, "cannot parse '%s'\n", opts.positional[0].c_str());
    return 2;
  }
  if (opts.width < 1) {
    analysis::AnalysisInput input;
    input.conflict_graph = &*g;
    return RunAndReport(MakeRunner(opts), input, opts, opts.positional[0]);
  }
  return LintEncodings(*g, opts.width, opts, /*routing=*/nullptr);
}

int CmdEncode(const LintOptions& opts) {
  if (opts.positional.empty()) Usage();
  const netlist::McncBenchmark bench =
      netlist::GenerateMcncBenchmark(opts.positional[0]);
  const fpga::Arch arch(bench.params.grid_size);
  const fpga::DeviceGraph device(arch);
  const route::GlobalRouting routing =
      route::RouteGlobally(device, bench.netlist, bench.placement);
  const graph::Graph conflict = flow::BuildConflictGraph(arch, routing);
  const int width =
      opts.width > 0 ? opts.width : route::PeakCongestion(arch, routing);
  return LintEncodings(conflict, width, opts, &routing);
}

int CmdReport(const LintOptions& opts) {
  if (opts.positional.empty()) Usage();
  std::vector<obs::RunRecord> records;
  std::string error;
  if (!obs::LoadRunReport(opts.positional[0], &records, &error)) {
    std::fprintf(stderr, "cannot load '%s': %s\n",
                 opts.positional[0].c_str(), error.c_str());
    return 2;
  }
  analysis::AnalysisInput input;
  input.run_records = &records;
  const std::string banner = opts.positional[0] + " (" +
                             std::to_string(records.size()) + " record(s))";
  return RunAndReport(MakeRunner(opts), input, opts, banner);
}

int CmdSources(const LintOptions& opts) {
  if (opts.positional.empty()) Usage();
  std::vector<analysis::SourceFile> sources;
  for (const std::string& path : opts.positional) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    sources.push_back({path, content.str()});
  }
  analysis::AnalysisInput input;
  input.sources = &sources;
  const std::string banner =
      std::to_string(sources.size()) + " source file(s)";
  return RunAndReport(MakeRunner(opts), input, opts, banner);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string command = argv[1];
  const LintOptions opts = ParseArgs(argc, argv);
  if (command == "passes") return CmdPasses();
  if (command == "cnf") return CmdCnf(opts);
  if (command == "col") return CmdCol(opts);
  if (command == "encode") return CmdEncode(opts);
  if (command == "report") return CmdReport(opts);
  if (command == "sources") return CmdSources(opts);
  Usage();
}
