#!/usr/bin/env python3
"""Gate cube-and-conquer parallel scaling in CI.

Reads a bench_cube JSON report (BENCH_pr6.json) and checks that the speedup
from 1 worker to the highest worker count reaches a floor on at least
`min_passing` instances. The floor scales with the cores that were actually
available when the report was produced (recorded by bench_cube as
"hardware_concurrency"): demanding 2.5x from a single-core container would
only measure scheduler noise, so

    effective = min(max_workers, hardware_concurrency)
    floor     = TARGET_SPEEDUP            if effective >= max_workers
              = PER_CORE_FRACTION * effective   otherwise (>= 1 core)

With the default 8-worker sweep on >= 8 cores the floor is the full 2.5x
acceptance target; on a 1-core machine it degrades to a sanity check that
the pool does not collapse (0.45x allows thread-churn overhead).

Timed-out cells make a speedup unmeasurable; such instances never pass but
only fail the gate when too few measurable instances remain.

The same script also gates bench_service reports (BENCH_pr10.json,
recognised by "bench": "service"). There the acceptance number is the
batched-service throughput against the sequential cold-solve baseline
("speedup_vs_sequential", floor SERVICE_TARGET_SPEEDUP), plus — when the
report swept more than one worker count — the 1-worker to max-worker
solves/sec scaling under the same per-core floor formula. Verdict
equivalence between the service and fresh solves is a correctness gate and
fails even in report-only mode.

On a machine without real parallelism (hardware_concurrency < 2) no
speedup measurement means anything — every number is scheduler noise — so
the script reports the numbers but always exits 0 (report-only mode).
Correctness checks still gate.

Usage: check_parallel_speedup.py <report.json> [min_passing]
Exits nonzero when fewer than `min_passing` (default 2) instances reach the
floor, printing one line per instance either way.
"""
import json
import sys

TARGET_SPEEDUP = 2.5
SERVICE_TARGET_SPEEDUP = 2.0
PER_CORE_FRACTION = 0.45


def scaled_floor(target: float, max_workers: int, cores: int) -> float:
    effective = min(max_workers, cores)
    if effective >= max_workers:
        return target
    return max(PER_CORE_FRACTION, PER_CORE_FRACTION * effective)


def check_service(report: dict) -> int:
    scaling = report.get("scaling", [])
    if not scaling:
        print("FAIL: service report has no scaling runs")
        return 1
    cores = max(1, int(report.get("hardware_concurrency", 1)))
    max_workers = int(scaling[-1]["workers"])
    failures = []

    if not report.get("equivalent", False):
        where = report.get("first_mismatch", "unknown")
        print(f"FAIL: service verdicts diverged from fresh solves "
              f"(first at {where})")
        return 1
    print("ok equivalence: service verdicts match fresh solves")

    hit_ratio = float(report.get("verdict_hit_ratio", 0.0))
    if hit_ratio <= 0.0:
        failures.append("verdict cache never hit")
    print(f"{'ok' if hit_ratio > 0.0 else 'LOW'} verdict cache hit "
          f"ratio: {hit_ratio:.1%}")

    batch_floor = scaled_floor(SERVICE_TARGET_SPEEDUP, max_workers, cores)
    batch = float(report.get("speedup_vs_sequential", 0.0))
    if batch < batch_floor:
        failures.append(f"batched speedup {batch:.2f}x below "
                        f"floor {batch_floor:.2f}x")
    print(f"{'ok' if batch >= batch_floor else 'LOW'} batched vs "
          f"sequential: {batch:.2f}x (floor {batch_floor:.2f}x, "
          f"cores={cores})")

    if len(scaling) >= 2:
        base = float(scaling[0]["solves_per_sec"])
        top = float(scaling[-1]["solves_per_sec"])
        scale = top / base if base > 0.0 else 0.0
        floor = scaled_floor(SERVICE_TARGET_SPEEDUP, max_workers, cores)
        if scale < floor:
            failures.append(f"worker scaling {scale:.2f}x below "
                            f"floor {floor:.2f}x")
        print(f"{'ok' if scale >= floor else 'LOW'} worker scaling: "
              f"x{scaling[0]['workers']} {base:.1f}/s -> "
              f"x{max_workers} {top:.1f}/s = {scale:.2f}x "
              f"(floor {floor:.2f}x)")
    else:
        print(f"skip worker scaling: single run at "
              f"x{max_workers} (need a sweep)")

    if failures:
        if cores < 2:
            print(f"REPORT-ONLY: {'; '.join(failures)} — but only "
                  f"{cores} hardware thread(s) were available, not gating")
            return 0
        print(f"FAIL: {'; '.join(failures)}")
        return 1
    print("PASS: service throughput gates met")
    return 0


def main() -> int:
    if len(sys.argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        report = json.load(f)
    min_passing = int(sys.argv[2]) if len(sys.argv) == 3 else 2

    if report.get("bench") == "service":
        return check_service(report)

    workers = report["workers"]
    cores = max(1, int(report.get("hardware_concurrency", 1)))
    effective = min(workers[-1], cores)
    if effective >= workers[-1]:
        floor = TARGET_SPEEDUP
    else:
        floor = max(PER_CORE_FRACTION, PER_CORE_FRACTION * effective)
    print(f"cores={cores} max_workers={workers[-1]} -> speedup floor "
          f"{floor:.2f}x, need {min_passing} passing instance(s)")

    passing = 0
    measurable = 0
    for inst in report.get("instances", []):
        name = inst["name"]
        seconds = inst["cube_seconds"]
        timeouts = inst.get("cube_timeouts", [False] * len(seconds))
        if timeouts[0] or timeouts[-1] or seconds[-1] <= 0.0:
            print(f"skip {name}: timed out, speedup unmeasurable")
            continue
        measurable += 1
        speedup = seconds[0] / seconds[-1]
        ok = speedup >= floor
        passing += ok
        verdict = "ok" if ok else "LOW"
        print(f"{verdict} {name}: x{workers[0]} {seconds[0]:.3f}s -> "
              f"x{workers[-1]} {seconds[-1]:.3f}s = {speedup:.2f}x "
              f"(floor {floor:.2f}x)")

    if passing < min_passing:
        if cores < 2:
            print(f"REPORT-ONLY: {passing}/{measurable} measurable "
                  f"instance(s) reached the floor, but only {cores} "
                  f"hardware thread(s) were available — not gating")
            return 0
        print(f"FAIL: only {passing}/{measurable} measurable instance(s) "
              f"reached the floor (need {min_passing})")
        return 1
    print(f"PASS: {passing}/{measurable} measurable instance(s) reached "
          f"the floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
