#!/usr/bin/env python3
"""Gate cube-and-conquer parallel scaling in CI.

Reads a bench_cube JSON report (BENCH_pr6.json) and checks that the speedup
from 1 worker to the highest worker count reaches a floor on at least
`min_passing` instances. The floor scales with the cores that were actually
available when the report was produced (recorded by bench_cube as
"hardware_concurrency"): demanding 2.5x from a single-core container would
only measure scheduler noise, so

    effective = min(max_workers, hardware_concurrency)
    floor     = TARGET_SPEEDUP            if effective >= max_workers
              = PER_CORE_FRACTION * effective   otherwise (>= 1 core)

With the default 8-worker sweep on >= 8 cores the floor is the full 2.5x
acceptance target; on a 1-core machine it degrades to a sanity check that
the pool does not collapse (0.45x allows thread-churn overhead).

Timed-out cells make a speedup unmeasurable; such instances never pass but
only fail the gate when too few measurable instances remain.

On a machine without real parallelism (hardware_concurrency < 2) no
speedup measurement means anything — every number is scheduler noise — so
the script reports the numbers but always exits 0 (report-only mode).

Usage: check_parallel_speedup.py <report.json> [min_passing]
Exits nonzero when fewer than `min_passing` (default 2) instances reach the
floor, printing one line per instance either way.
"""
import json
import sys

TARGET_SPEEDUP = 2.5
PER_CORE_FRACTION = 0.45


def main() -> int:
    if len(sys.argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        report = json.load(f)
    min_passing = int(sys.argv[2]) if len(sys.argv) == 3 else 2

    workers = report["workers"]
    cores = max(1, int(report.get("hardware_concurrency", 1)))
    effective = min(workers[-1], cores)
    if effective >= workers[-1]:
        floor = TARGET_SPEEDUP
    else:
        floor = max(PER_CORE_FRACTION, PER_CORE_FRACTION * effective)
    print(f"cores={cores} max_workers={workers[-1]} -> speedup floor "
          f"{floor:.2f}x, need {min_passing} passing instance(s)")

    passing = 0
    measurable = 0
    for inst in report.get("instances", []):
        name = inst["name"]
        seconds = inst["cube_seconds"]
        timeouts = inst.get("cube_timeouts", [False] * len(seconds))
        if timeouts[0] or timeouts[-1] or seconds[-1] <= 0.0:
            print(f"skip {name}: timed out, speedup unmeasurable")
            continue
        measurable += 1
        speedup = seconds[0] / seconds[-1]
        ok = speedup >= floor
        passing += ok
        verdict = "ok" if ok else "LOW"
        print(f"{verdict} {name}: x{workers[0]} {seconds[0]:.3f}s -> "
              f"x{workers[-1]} {seconds[-1]:.3f}s = {speedup:.2f}x "
              f"(floor {floor:.2f}x)")

    if passing < min_passing:
        if cores < 2:
            print(f"REPORT-ONLY: {passing}/{measurable} measurable "
                  f"instance(s) reached the floor, but only {cores} "
                  f"hardware thread(s) were available — not gating")
            return 0
        print(f"FAIL: only {passing}/{measurable} measurable instance(s) "
              f"reached the floor (need {min_passing})")
        return 1
    print(f"PASS: {passing}/{measurable} measurable instance(s) reached "
          f"the floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
