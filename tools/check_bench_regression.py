#!/usr/bin/env python3
"""Gate solver-throughput regressions in CI.

Compares a google-benchmark JSON report (--benchmark_format=json) against a
committed baseline file (bench/baseline_pr5.json) of per-benchmark counter
floors. A benchmark fails if its counter lands below
(1 - tolerance) * baseline; benchmarks present in the report but not in the
baseline are ignored, while baseline entries missing from the report fail
(a silently skipped benchmark must not look like a pass).

Usage: check_bench_regression.py <baseline.json> <report.json>
Exits nonzero on any failure, printing one line per benchmark either way.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        report = json.load(f)

    counter = baseline.get("counter", "props/s")
    tolerance = float(baseline.get("tolerance", 0.10))
    floors = baseline["baselines"]

    measured = {}
    for bench in report.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev) carry run_type "aggregate";
        # plain repetitions and single runs are "iteration".
        if bench.get("run_type") == "aggregate" and (
                bench.get("aggregate_name") != "mean"):
            continue
        name = bench.get("run_name", bench.get("name", ""))
        if counter in bench:
            measured[name] = float(bench[counter])

    failures = 0
    for name, floor in floors.items():
        threshold = (1.0 - tolerance) * float(floor)
        if name not in measured:
            print(f"FAIL {name}: missing from report (counter '{counter}')")
            failures += 1
            continue
        value = measured[name]
        verdict = "ok" if value >= threshold else "FAIL"
        print(f"{verdict} {name}: {value / 1e6:.2f}M vs floor "
              f"{threshold / 1e6:.2f}M (baseline {float(floor) / 1e6:.2f}M "
              f"- {tolerance:.0%})")
        if value < threshold:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
