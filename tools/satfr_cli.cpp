// satfr — command-line front end for the SAT-based FPGA detailed routing
// flow and its building blocks.
//
//   satfr benchmarks                       list the synthetic MCNC suite
//   satfr encodings                        list the registered encodings
//   satfr prove  <benchmark> [opts]        find W*, prove W*-1 unroutable
//   satfr route  <benchmark> --width W     route at a fixed channel width
//   satfr replay <benchmark> <trace>       drive a long-lived incremental
//                                          RoutingSession from a rip-up /
//                                          re-route trace file (see below;
//                                          `route <benchmark> --replay FILE`
//                                          is an equivalent spelling)
//   satfr export <benchmark> [opts]        write .col / .cnf artifacts
//   satfr solve  <file.cnf> [opts]         run the CDCL solver on DIMACS CNF
//   satfr color  <file.col> --width K      K-color a DIMACS graph via SAT
//   satfr route-file <file.net> [opts]     full flow on a placed-netlist
//                                          file (optionally --routing FILE
//                                          to reuse a saved global routing,
//                                          --save-routing FILE to save one)
//   satfr serve <trace>                    drive the batched routing
//                                          service from a traffic trace
//                                          file (see below); --workers N
//                                          sizes the pool, --selfcheck
//                                          audits the verdict cache against
//                                          fresh solves at shutdown
//
// Common options:
//   --encoding NAME   (default ITE-linear-2+muldirect)
//   --sym b1|s1|none  (default s1)
//   --solver siege|minisat|walksat  (default siege; walksat: SAT-only)
//   --timeout SECONDS (default 300)
//   --width N
//   --selfcheck       run the satlint pipeline over every encoded CNF
//                     before solving; abort on error-severity findings
//   --dimacs-out FILE (export only) stream the CNF to FILE instead of the
//                     default <benchmark>_w<W>.cnf; the formula goes to
//                     disk clause by clause and is never held in memory
//   --cube            (prove/route/route-file) cube-and-conquer: split each
//                     width into cubes solved by a worker pool with a
//                     lock-free clause exchange
//   --workers N       (with --cube) worker-pool size (default 4)
//   --cubes N         (with --cube) cube-count target per width (default 256)
//   --deterministic   (with --cube) pin cube order, disable stealing and
//                     sharing; single-worker runs become bit-reproducible
//
// Replay trace format (one event per line; `#` starts a comment):
//   ripup N             deactivate net N (its conflict edges disappear)
//   reroute N p1 p2...  (re-)activate net N conflicting with nets p1 p2...
//   solve [W]           solve the current state at width W (default:
//                       --width, else the benchmark's peak congestion)
// Each delta flips assumptions on the resident solver — nothing is
// re-extracted or re-encoded — and the run ends with a per-delta latency
// summary (p50/p99) plus the session's lifetime counters.
//
// Serve trace format (one event per line; `#` starts a comment):
//   route <benchmark> <width> [k=v...]  submit one routing query; optional
//                       k=v tokens: prio=N (scheduler priority), enc=NAME,
//                       sym=b1|s1|none, solver=siege|minisat
//   session <client> <benchmark> [maxwidth]  open an incremental session
//                       for <client> (encoded once, pinned to one worker)
//   ripup <client> <net>                rip up net in the client's session
//   reroute <client> <net> [p1 p2...]   re-route net against partners
//   solve <client> [width]              solve the client's session state
//   wait                                barrier: settle everything queued
//                                       so far and print the results
// Routing queries are submitted asynchronously — everything between two
// `wait` lines runs as one batch on the worker pool. The run ends with a
// throughput/latency summary and the cache hit counters.
//
// Telemetry (all commands; each is independent and off by default):
//   --trace-out FILE  write a Chrome trace_event JSON timeline (open in
//                     Perfetto / chrome://tracing): encode/solve spans per
//                     width, per-restart solver phase sub-spans, cube-worker
//                     swimlanes
//   --report FILE     append one structured JSONL record per solve
//                     (verdict, timings, solver window counters, learnt-DB
//                     shape, cube/exchange counters); lint it with
//                     `satlint report FILE`
//   --metrics-out FILE  write the global metrics registry snapshot as JSON
//                     at exit
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/runner.h"
#include "common/stopwatch.h"
#include "cube/cube_solver.h"
#include "encode/registry.h"
#include "flow/conflict_graph.h"
#include "flow/detailed_router.h"
#include "flow/min_width.h"
#include "flow/routing_session.h"
#include "flow/track_checker.h"
#include "graph/coloring_bounds.h"
#include "graph/dimacs_col.h"
#include "netlist/mcnc_suite.h"
#include "netlist/netlist_io.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "route/global_router.h"
#include "route/routing_io.h"
#include "sat/clause_sink.h"
#include "sat/dimacs.h"
#include "sat/walksat.h"
#include "service/routing_service.h"

namespace {

using namespace satfr;

struct CliOptions {
  std::string encoding = "ITE-linear-2+muldirect";
  std::string sym = "s1";
  std::string solver = "siege";
  std::string routing_file;
  std::string save_routing_file;
  std::string replay_file;
  std::string dimacs_out;
  std::string trace_out;
  std::string metrics_out;
  std::string report;
  double timeout = 300.0;
  int width = -1;
  bool selfcheck = false;
  bool cube = false;
  int workers = 4;
  int cubes = 256;
  bool deterministic = false;
  std::vector<std::string> positional;
};

[[noreturn]] void Usage() {
  std::fprintf(
      stderr,
      "usage: satfr "
      "<benchmarks|encodings|prove|route|replay|export|solve|color|serve> "
      "[args]\n"
      "  see the header of tools/satfr_cli.cpp or README.md for details\n");
  std::exit(2);
}

CliOptions ParseArgs(int argc, char** argv) {
  CliOptions opts;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (arg == "--encoding") {
      opts.encoding = next();
    } else if (arg == "--sym") {
      opts.sym = next();
    } else if (arg == "--solver") {
      opts.solver = next();
    } else if (arg == "--timeout") {
      opts.timeout = std::atof(next().c_str());
    } else if (arg == "--width") {
      opts.width = std::atoi(next().c_str());
    } else if (arg == "--routing") {
      opts.routing_file = next();
    } else if (arg == "--save-routing") {
      opts.save_routing_file = next();
    } else if (arg == "--replay") {
      opts.replay_file = next();
    } else if (arg == "--dimacs-out") {
      opts.dimacs_out = next();
    } else if (arg == "--trace-out") {
      opts.trace_out = next();
    } else if (arg == "--metrics-out") {
      opts.metrics_out = next();
    } else if (arg == "--report") {
      opts.report = next();
    } else if (arg == "--selfcheck") {
      opts.selfcheck = true;
    } else if (arg == "--cube") {
      opts.cube = true;
    } else if (arg == "--workers") {
      opts.workers = std::atoi(next().c_str());
    } else if (arg == "--cubes") {
      opts.cubes = std::atoi(next().c_str());
    } else if (arg == "--deterministic") {
      opts.deterministic = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      Usage();
    } else {
      opts.positional.push_back(arg);
    }
  }
  return opts;
}

flow::DetailedRouteOptions ToRouteOptions(const CliOptions& opts) {
  flow::DetailedRouteOptions route;
  route.encoding = encode::GetEncoding(opts.encoding);
  route.heuristic = symmetry::HeuristicFromName(opts.sym);
  route.solver = opts.solver == "minisat"
                     ? sat::SolverOptions::MiniSatLike()
                     : sat::SolverOptions::SiegeLike();
  route.timeout_seconds = opts.timeout;
  route.selfcheck = opts.selfcheck;
  if (!opts.positional.empty()) route.run_label = opts.positional[0];
  return route;
}

// Installs the global telemetry sinks for the process (when requested) and
// flushes the file-shaped ones at scope exit. Commands just pull
// GlobalTrace()/GlobalReport() — a run without these flags costs them two
// null loads per solve.
class TelemetrySession {
 public:
  explicit TelemetrySession(const CliOptions& opts)
      : trace_path_(opts.trace_out), metrics_path_(opts.metrics_out) {
    if (!trace_path_.empty()) {
      trace_ = std::make_unique<obs::TraceWriter>();
      obs::SetGlobalTrace(trace_.get());
    }
    if (!opts.report.empty()) {
      report_ = std::make_unique<obs::RunReportWriter>(opts.report);
      if (!report_->ok()) {
        std::fprintf(stderr, "cannot open report file '%s'\n",
                     opts.report.c_str());
        report_.reset();
      } else {
        obs::SetGlobalReport(report_.get());
      }
    }
  }

  ~TelemetrySession() {
    obs::SetGlobalTrace(nullptr);
    obs::SetGlobalReport(nullptr);
    std::string error;
    if (trace_ != nullptr && !trace_->WriteFile(trace_path_, &error)) {
      std::fprintf(stderr, "trace write failed: %s\n", error.c_str());
    }
    if (!metrics_path_.empty() &&
        !obs::WriteJsonFile(metrics_path_,
                            obs::GlobalMetrics().Snapshot().ToJson(),
                            &error)) {
      std::fprintf(stderr, "metrics write failed: %s\n", error.c_str());
    }
    if (report_ != nullptr) {
      std::fprintf(stderr, "report: %zu record(s) -> %s\n",
                   report_->records_written(), report_->path().c_str());
    }
  }

  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::unique_ptr<obs::TraceWriter> trace_;
  std::unique_ptr<obs::RunReportWriter> report_;
};

void ApplyCubeOptions(const CliOptions& opts, flow::MinWidthOptions* mw) {
  if (!opts.cube) return;
  mw->cube_workers = std::max(1, opts.workers);
  mw->cube_target_cubes = std::max(1, opts.cubes);
  mw->cube_deterministic = opts.deterministic;
}

/// Prints selfcheck findings; true if any is error-severity (fail fast).
bool ReportLint(const flow::DetailedRouteResult& result) {
  bool errors = false;
  for (const analysis::Diagnostic& d : result.lint) {
    std::fprintf(stderr, "selfcheck %s [%s] %s: %s\n",
                 analysis::ToString(d.severity), d.pass.c_str(),
                 d.location.c_str(), d.message.c_str());
    errors = errors || d.severity == analysis::Severity::kError;
  }
  if (errors) {
    std::fprintf(stderr,
                 "selfcheck found error-severity findings; not solving\n");
  }
  return errors;
}

struct LoadedBenchmark {
  fpga::Arch arch{1};
  route::GlobalRouting routing;
  graph::Graph conflict;
  int peak = 0;
};

LoadedBenchmark LoadBenchmark(const std::string& name) {
  const netlist::McncBenchmark bench = netlist::GenerateMcncBenchmark(name);
  LoadedBenchmark loaded;
  loaded.arch = fpga::Arch(bench.params.grid_size);
  const fpga::DeviceGraph device(loaded.arch);
  loaded.routing =
      route::RouteGlobally(device, bench.netlist, bench.placement);
  loaded.conflict = flow::BuildConflictGraph(loaded.arch, loaded.routing);
  loaded.peak = route::PeakCongestion(loaded.arch, loaded.routing);
  return loaded;
}

int CmdBenchmarks() {
  std::printf("%-12s %6s %6s %10s\n", "name", "grid", "nets", "2-pin");
  for (const std::string& name : netlist::AllBenchmarkNames()) {
    const netlist::McncBenchmark bench =
        netlist::GenerateMcncBenchmark(name);
    std::printf("%-12s %6d %6d %10d\n", name.c_str(),
                bench.params.grid_size, bench.netlist.num_nets(),
                bench.netlist.NumTwoPinConnections());
  }
  return 0;
}

int CmdEncodings() {
  for (const encode::EncodingSpec& spec : encode::AllEncodings()) {
    const encode::DomainEncoding d13 = EncodeDomain(spec, 13);
    std::printf("%-26s  levels=%zu  vars@K13=%d\n", spec.name.c_str(),
                spec.levels.size(), d13.num_vars);
  }
  return 0;
}

int CmdProve(const CliOptions& opts) {
  if (opts.positional.empty()) Usage();
  const LoadedBenchmark loaded = LoadBenchmark(opts.positional[0]);
  flow::MinWidthOptions mw;
  mw.route = ToRouteOptions(opts);
  ApplyCubeOptions(opts, &mw);
  const flow::MinWidthResult result =
      flow::FindMinimumWidthOnGraph(loaded.conflict, loaded.peak, mw);
  if (ReportLint(result.routable) || ReportLint(result.unroutable)) return 1;
  if (result.min_width < 0) {
    std::printf("TIMEOUT before establishing W*\n");
    return 1;
  }
  std::printf("W* = %d (lower bound %d, optimality %s)\n", result.min_width,
              result.lower_bound,
              result.proven_optimal ? "proven" : "open");
  std::printf("SAT at W*:   %.3fs   UNSAT at W*-1: %.3fs\n",
              result.routable.TotalSeconds(),
              result.unroutable.TotalSeconds());
  return 0;
}

// Hot-path and inprocessing counters, one line each. Zero-activity lines
// are elided so solvers running with features disabled stay quiet.
void PrintSolverDetail(const sat::SolverStats& s) {
  std::printf("watch: %llu inspections, %llu blocker hits (%.1f%%)\n",
              static_cast<unsigned long long>(s.watch_inspections),
              static_cast<unsigned long long>(s.blocker_hits),
              100.0 * s.BlockerHitRate());
  if (s.gc_runs > 0 || s.tier_promotions > 0 || s.tier_demotions > 0) {
    std::printf("db: %llu gc runs, %llu tier promotions, %llu demotions\n",
                static_cast<unsigned long long>(s.gc_runs),
                static_cast<unsigned long long>(s.tier_promotions),
                static_cast<unsigned long long>(s.tier_demotions));
  }
  if (s.clauses_vivified > 0 || s.clauses_strengthened > 0) {
    std::printf("inprocess: %llu clauses vivified (-%llu lits), "
                "%llu strengthened\n",
                static_cast<unsigned long long>(s.clauses_vivified),
                static_cast<unsigned long long>(s.lits_removed_vivify),
                static_cast<unsigned long long>(s.clauses_strengthened));
  }
  if (s.import_duplicates > 0) {
    std::printf("exchange: %llu duplicate imports dropped\n",
                static_cast<unsigned long long>(s.import_duplicates));
  }
}

// Routes one fixed width through the cube-and-conquer pool and prints the
// pool-specific statistics (the monolithic path prints solver detail
// instead; a pool's merged counters aggregate CPU across workers).
int CmdRouteCube(const CliOptions& opts, const LoadedBenchmark& loaded) {
  cube::CubeSolveOptions cube_options;
  cube_options.pool.num_workers = std::max(1, opts.workers);
  cube_options.pool.deterministic = opts.deterministic;
  cube_options.gen.target_cubes = std::max(1, opts.cubes);
  cube_options.solver = opts.solver == "minisat"
                            ? sat::SolverOptions::MiniSatLike()
                            : sat::SolverOptions::SiegeLike();
  cube_options.timeout_seconds = opts.timeout;
  if (!opts.positional.empty()) cube_options.run_label = opts.positional[0];
  const cube::CubeSolveResult result = cube::SolveColoringWithCubes(
      loaded.conflict, opts.width, encode::GetEncoding(opts.encoding),
      symmetry::HeuristicFromName(opts.sym), cube_options);
  if (!result.error.empty()) {
    std::printf("INTERNAL ERROR: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("%s in %.3fs (%zu cubes: %zu resolved, %zu stolen, "
              "%zu+%zu pruned)\n",
              sat::ToString(result.status), result.wall_seconds,
              result.num_cubes, result.cubes_resolved, result.cubes_stolen,
              result.pruned_conflict, result.pruned_symmetry);
  std::printf("pool: %llu conflicts, %llu propagations\n",
              static_cast<unsigned long long>(result.solver_stats.conflicts),
              static_cast<unsigned long long>(
                  result.solver_stats.propagations));
  // Exchange health: exported/imported are the useful flow; dropped-full
  // and torn-read discards climbing toward `exported` mean the ring is
  // undersized (or readers are too slow) and sharing is mostly wasted work.
  const sat::ClauseExchange::Totals& ex = result.exchange_totals;
  std::printf("exchange: %llu exported, %llu imported, %llu dropped-full, "
              "%llu torn-read discarded\n",
              static_cast<unsigned long long>(ex.published),
              static_cast<unsigned long long>(ex.collected),
              static_cast<unsigned long long>(ex.evicted +
                                              ex.oversize_dropped),
              static_cast<unsigned long long>(ex.torn_reads));
  for (std::size_t w = 0; w < result.worker_loads.size(); ++w) {
    const cube::CubeWorkerPool::WorkerLoad& load = result.worker_loads[w];
    std::printf("worker %zu: %.3fs busy, %zu cube(s), %zu steal(s)\n", w,
                load.busy_seconds, load.cubes, load.steals);
  }
  if (result.status == sat::SolveResult::kSat) {
    std::string error;
    if (!flow::ValidateTrackAssignment(loaded.arch, loaded.routing,
                                       result.colors, opts.width, &error)) {
      std::printf("INTERNAL ERROR: %s\n", error.c_str());
      return 1;
    }
    std::printf("track assignment validated (winning cube %d).\n",
                result.winning_cube);
  }
  return result.status == sat::SolveResult::kUnknown ? 1 : 0;
}

int CmdReplay(const CliOptions& opts);

int CmdRoute(const CliOptions& opts) {
  if (opts.positional.empty()) Usage();
  if (!opts.replay_file.empty()) {
    // `route <bench> --replay FILE` is sugar for `replay <bench> FILE`.
    CliOptions replay = opts;
    replay.positional = {opts.positional[0], opts.replay_file};
    return CmdReplay(replay);
  }
  if (opts.width < 1) Usage();
  const LoadedBenchmark loaded = LoadBenchmark(opts.positional[0]);
  if (opts.cube) return CmdRouteCube(opts, loaded);
  const auto result = flow::RouteDetailedOnGraph(loaded.conflict, opts.width,
                                                 ToRouteOptions(opts));
  if (ReportLint(result)) return 1;
  std::printf("%s in %.3fs (%d vars, %zu clauses, %llu conflicts)\n",
              sat::ToString(result.status), result.TotalSeconds(),
              result.cnf_vars, result.cnf_clauses,
              static_cast<unsigned long long>(
                  result.solver_stats.conflicts));
  std::printf("stats: %llu propagations (%llu binary, %.2f Mprops/s), "
              "%llu imported, %llu exported\n",
              static_cast<unsigned long long>(
                  result.solver_stats.propagations),
              static_cast<unsigned long long>(
                  result.solver_stats.binary_propagations),
              result.solver_stats.PropagationsPerSecond() / 1e6,
              static_cast<unsigned long long>(
                  result.solver_stats.imported_clauses),
              static_cast<unsigned long long>(
                  result.solver_stats.exported_clauses));
  PrintSolverDetail(result.solver_stats);
  if (result.status == sat::SolveResult::kSat) {
    std::string error;
    if (!flow::ValidateTrackAssignment(loaded.arch, loaded.routing,
                                       result.tracks, opts.width, &error)) {
      std::printf("INTERNAL ERROR: %s\n", error.c_str());
      return 1;
    }
    std::printf("track assignment validated.\n");
  }
  return result.status == sat::SolveResult::kUnknown ? 1 : 0;
}

int CmdExport(const CliOptions& opts) {
  if (opts.positional.empty()) Usage();
  const std::string name = opts.positional[0];
  const LoadedBenchmark loaded = LoadBenchmark(name);
  const int width = opts.width > 0 ? opts.width : loaded.peak;
  const std::string col_path = name + ".col";
  graph::WriteDimacsColFile(loaded.conflict, col_path,
                            {"satfr conflict graph: " + name});
  const auto sequence = symmetry::SymmetrySequence(
      loaded.conflict, width, symmetry::HeuristicFromName(opts.sym));
  // Stream the encoder straight to disk: the formula is never materialized,
  // so exports are bounded by the file size rather than memory.
  const std::string cnf_path =
      opts.dimacs_out.empty() ? name + "_w" + std::to_string(width) + ".cnf"
                              : opts.dimacs_out;
  std::ofstream cnf_out(cnf_path, std::ios::binary);
  if (!cnf_out) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", cnf_path.c_str());
    return 2;
  }
  sat::StreamingDimacsSink sink(
      cnf_out, {"satfr: " + name + " W=" + std::to_string(width) +
                " encoding=" + opts.encoding + " sym=" + opts.sym});
  encode::EncodeColoringToSink(loaded.conflict, width,
                               encode::GetEncoding(opts.encoding), sequence,
                               sink);
  if (!sink.Finish()) {
    std::fprintf(stderr, "write to '%s' failed\n", cnf_path.c_str());
    return 2;
  }
  std::printf("wrote %s (%d vertices, %zu edges) and %s (%d vars, %llu "
              "clauses)\n",
              col_path.c_str(), loaded.conflict.num_vertices(),
              loaded.conflict.num_edges(), cnf_path.c_str(), sink.num_vars(),
              static_cast<unsigned long long>(sink.num_clauses()));
  return 0;
}

int CmdSolve(const CliOptions& opts) {
  if (opts.positional.empty()) Usage();
  const auto cnf = sat::ParseDimacsFile(opts.positional[0]);
  if (!cnf) {
    std::fprintf(stderr, "cannot parse '%s'\n", opts.positional[0].c_str());
    return 2;
  }
  const Deadline deadline = Deadline::After(opts.timeout);
  if (opts.solver == "walksat") {
    sat::WalkSat walksat(*cnf);
    const auto result = walksat.Solve(deadline);
    std::printf("%s (%llu flips)\n", sat::ToString(result),
                static_cast<unsigned long long>(walksat.stats().flips));
    return result == sat::SolveResult::kUnknown ? 1 : 0;
  }
  sat::Solver solver(opts.solver == "minisat"
                         ? sat::SolverOptions::MiniSatLike()
                         : sat::SolverOptions::SiegeLike());
  sat::SolveResult result = sat::SolveResult::kUnsat;
  if (solver.AddCnf(*cnf)) result = solver.Solve(deadline);
  std::printf("%s (%llu conflicts, %llu decisions)\n",
              sat::ToString(result),
              static_cast<unsigned long long>(solver.stats().conflicts),
              static_cast<unsigned long long>(solver.stats().decisions));
  std::printf("stats: %llu propagations (%llu binary, %.2f Mprops/s)\n",
              static_cast<unsigned long long>(solver.stats().propagations),
              static_cast<unsigned long long>(
                  solver.stats().binary_propagations),
              solver.stats().PropagationsPerSecond() / 1e6);
  PrintSolverDetail(solver.stats());
  return result == sat::SolveResult::kUnknown ? 1 : 0;
}

int CmdColor(const CliOptions& opts) {
  if (opts.positional.empty() || opts.width < 1) Usage();
  const auto g = graph::ParseDimacsColFile(opts.positional[0]);
  if (!g) {
    std::fprintf(stderr, "cannot parse '%s'\n", opts.positional[0].c_str());
    return 2;
  }
  const auto sequence = symmetry::SymmetrySequence(
      *g, opts.width, symmetry::HeuristicFromName(opts.sym));
  const auto enc = encode::EncodeColoring(
      *g, opts.width, encode::GetEncoding(opts.encoding), sequence);
  sat::Solver solver(sat::SolverOptions::SiegeLike());
  sat::SolveResult result = sat::SolveResult::kUnsat;
  if (solver.AddCnf(enc.cnf)) {
    result = solver.Solve(Deadline::After(opts.timeout));
  }
  std::printf("%d-coloring: %s\n", opts.width, sat::ToString(result));
  if (result == sat::SolveResult::kSat) {
    const auto colors = encode::DecodeColoring(enc, solver.model());
    if (!g->IsProperColoring(colors)) {
      std::printf("INTERNAL ERROR: improper coloring decoded\n");
      return 1;
    }
    for (std::size_t v = 0; v < colors.size(); ++v) {
      std::printf("v%zu %d\n", v + 1, colors[v]);
    }
  }
  return result == sat::SolveResult::kUnknown ? 1 : 0;
}

int CmdRouteFile(const CliOptions& opts) {
  if (opts.positional.empty()) Usage();
  std::string error;
  const auto parsed =
      netlist::ParsePlacedNetlistFile(opts.positional[0], &error);
  if (!parsed) {
    std::fprintf(stderr, "netlist: %s\n", error.c_str());
    return 2;
  }
  const fpga::Arch arch(parsed->params.grid_size);
  route::GlobalRouting routing;
  if (!opts.routing_file.empty()) {
    const auto loaded =
        route::ParseGlobalRoutingFile(opts.routing_file, &error);
    if (!loaded) {
      std::fprintf(stderr, "routing: %s\n", error.c_str());
      return 2;
    }
    if (loaded->grid_size != arch.grid_size()) {
      std::fprintf(stderr, "routing grid %d != netlist grid %d\n",
                   loaded->grid_size, arch.grid_size());
      return 2;
    }
    routing = loaded->routing;
    if (!route::ValidateGlobalRouting(arch, parsed->placement, routing,
                                      &error)) {
      std::fprintf(stderr, "routing invalid: %s\n", error.c_str());
      return 2;
    }
  } else {
    const fpga::DeviceGraph device(arch);
    routing = route::RouteGlobally(device, parsed->netlist,
                                   parsed->placement);
  }
  if (!opts.save_routing_file.empty()) {
    if (!route::WriteGlobalRoutingFile(arch, routing,
                                       opts.save_routing_file)) {
      std::fprintf(stderr, "cannot write '%s'\n",
                   opts.save_routing_file.c_str());
      return 2;
    }
    std::printf("saved global routing to %s\n",
                opts.save_routing_file.c_str());
  }
  const graph::Graph conflict = flow::BuildConflictGraph(arch, routing);
  const int peak = route::PeakCongestion(arch, routing);
  std::printf("circuit %s: %zu 2-pin nets, peak congestion %d\n",
              parsed->params.name.c_str(), routing.NumTwoPinNets(), peak);
  if (opts.width > 0) {
    const auto result = flow::RouteDetailedOnGraph(conflict, opts.width,
                                                   ToRouteOptions(opts));
    if (ReportLint(result)) return 1;
    std::printf("W=%d: %s in %.3fs\n", opts.width,
                sat::ToString(result.status), result.TotalSeconds());
    return result.status == sat::SolveResult::kUnknown ? 1 : 0;
  }
  flow::MinWidthOptions mw;
  mw.route = ToRouteOptions(opts);
  ApplyCubeOptions(opts, &mw);
  const auto result = flow::FindMinimumWidthOnGraph(conflict, peak, mw);
  if (result.min_width < 0) {
    std::printf("TIMEOUT before establishing W*\n");
    return 1;
  }
  std::printf("W* = %d (optimality %s)\n", result.min_width,
              result.proven_optimal ? "proven" : "open");
  return 0;
}

// Nearest-rank percentile; sorts a copy of the sample.
double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

// Drives a RoutingSession from a trace file: `ripup N`, `reroute N p...`,
// `solve [W]`, `#` comments. The whole run uses one resident solver — the
// closing summary proves it (full encodes stays 1, extractions stay 0) and
// gives the per-delta latency distribution.
int CmdReplay(const CliOptions& opts) {
  if (opts.positional.size() < 2) Usage();
  const std::string name = opts.positional[0];
  const std::string trace_path = opts.positional[1];
  std::ifstream trace(trace_path);
  if (!trace) {
    std::fprintf(stderr, "cannot open trace '%s'\n", trace_path.c_str());
    return 2;
  }
  const LoadedBenchmark loaded = LoadBenchmark(name);
  const std::vector<int> dsatur = graph::DsaturColoring(loaded.conflict);
  const int dsatur_width =
      dsatur.empty() ? 1
                     : *std::max_element(dsatur.begin(), dsatur.end()) + 1;
  const int default_width = opts.width > 0 ? opts.width : loaded.peak;
  const int max_width = std::max(dsatur_width, default_width);

  flow::RoutingSessionOptions session_options;
  session_options.encoding = encode::GetEncoding(opts.encoding);
  session_options.heuristic = symmetry::HeuristicFromName(opts.sym);
  session_options.solver = opts.solver == "minisat"
                               ? sat::SolverOptions::MiniSatLike()
                               : sat::SolverOptions::SiegeLike();
  session_options.timeout_seconds = opts.timeout;
  session_options.run_label = name;

  Stopwatch encode_watch;
  flow::RoutingSession session(loaded.conflict, max_width, session_options);
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n", session.error().c_str());
    return 2;
  }
  std::printf("session: %d nets, %zu conflict edges, max width %d, "
              "encoded once in %.3fs\n",
              session.num_nets(), loaded.conflict.num_edges(), max_width,
              encode_watch.Seconds());

  std::vector<double> delta_seconds;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(trace, line)) {
    ++line_no;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream in(line);
    std::string op;
    if (!(in >> op)) continue;  // blank / comment-only line
    auto trace_error = [&](const std::string& message) {
      std::fprintf(stderr, "%s:%zu: %s\n", trace_path.c_str(), line_no,
                   message.c_str());
      return 1;
    };
    if (op == "ripup") {
      graph::VertexId net = -1;
      if (!(in >> net)) return trace_error("ripup needs a net id");
      Stopwatch watch;
      if (!session.RipUp(net)) return trace_error(session.error());
      delta_seconds.push_back(watch.Seconds());
      std::printf("ripup %d: %.0fus\n", net, delta_seconds.back() * 1e6);
    } else if (op == "reroute") {
      graph::VertexId net = -1;
      if (!(in >> net)) return trace_error("reroute needs a net id");
      std::vector<graph::VertexId> partners;
      for (graph::VertexId u = 0; in >> u;) partners.push_back(u);
      Stopwatch watch;
      if (!session.Reroute(net, partners)) {
        return trace_error(session.error());
      }
      delta_seconds.push_back(watch.Seconds());
      std::printf("reroute %d (%zu conflicts): %.0fus\n", net,
                  partners.size(), delta_seconds.back() * 1e6);
    } else if (op == "solve") {
      int width = default_width;
      in >> width;  // optional; keeps the default when absent
      const flow::SessionSolveResult result = session.Solve(width);
      if (!result.error.empty()) return trace_error(result.error);
      std::printf("solve W=%d: %s in %.3fs\n", width,
                  sat::ToString(result.status), result.solve_seconds);
    } else {
      return trace_error("unknown trace op '" + op + "'");
    }
  }

  const flow::SessionStats& stats = session.session_stats();
  std::printf("deltas: %llu applied (%llu groups emitted, %llu retired, "
              "%llu partner edges detached, %llu clauses)\n",
              static_cast<unsigned long long>(stats.deltas_applied),
              static_cast<unsigned long long>(stats.groups_emitted),
              static_cast<unsigned long long>(stats.groups_retired),
              static_cast<unsigned long long>(stats.partner_detachments),
              static_cast<unsigned long long>(stats.delta_clauses));
  if (!delta_seconds.empty()) {
    std::printf("delta latency: p50 %.0fus, p99 %.0fus over %zu deltas\n",
                Percentile(delta_seconds, 0.50) * 1e6,
                Percentile(delta_seconds, 0.99) * 1e6,
                delta_seconds.size());
  }
  std::printf("incremental contract: %llu full encode(s), %llu graph "
              "re-extraction(s)\n",
              static_cast<unsigned long long>(stats.full_encodes),
              static_cast<unsigned long long>(stats.graph_extractions));
  return 0;
}

int CmdServe(const CliOptions& opts) {
  if (opts.positional.empty()) Usage();
  const std::string trace_path = opts.positional[0];
  std::ifstream trace(trace_path);
  if (!trace) {
    std::fprintf(stderr, "cannot open trace '%s'\n", trace_path.c_str());
    return 2;
  }

  service::ServiceOptions service_options;
  service_options.scheduler.num_workers = std::max(1, opts.workers);
  service_options.timeout_seconds = opts.timeout;
  service::RoutingService svc(service_options);
  std::printf("serve: %d worker(s), trace %s\n", svc.num_workers(),
              trace_path.c_str());

  // Benchmarks load lazily, once, and their conflict graphs are shared
  // (the service keys its caches on the graph fingerprint, not identity).
  std::unordered_map<std::string, std::shared_ptr<const graph::Graph>> graphs;
  std::unordered_map<std::string, int> peaks;
  auto graph_for = [&](const std::string& name)
      -> std::shared_ptr<const graph::Graph> {
    const auto it = graphs.find(name);
    if (it != graphs.end()) return it->second;
    const LoadedBenchmark loaded = LoadBenchmark(name);
    auto shared = std::make_shared<graph::Graph>(loaded.conflict);
    graphs.emplace(name, shared);
    peaks.emplace(name, loaded.peak);
    return shared;
  };

  struct Outstanding {
    service::RoutingService::Ticket ticket;
    std::string what;
  };
  std::vector<Outstanding> outstanding;
  std::vector<double> route_latency;
  std::size_t routes = 0, session_ops = 0, failures = 0;
  Stopwatch wall;

  auto settle = [&]() {
    for (const Outstanding& out : outstanding) {
      const service::Response& r = svc.Wait(out.ticket);
      if (!r.ok) {
        ++failures;
        std::printf("%s: error: %s\n", out.what.c_str(), r.error.c_str());
        continue;
      }
      if (r.kind == service::RequestKind::kRoute) {
        route_latency.push_back(r.latency_seconds);
        std::printf("%s: %s in %.0fus%s%s%s%s\n", out.what.c_str(),
                    sat::ToString(r.status), r.latency_seconds * 1e6,
                    r.summary_hit ? " [summary]" : "",
                    r.verdict_hit && !r.summary_hit ? " [verdict]" : "",
                    r.instance_hit ? " [instance]" : "",
                    r.cancelled ? " [cancelled]" : "");
      } else {
        std::printf("%s: %s%.0fus\n", out.what.c_str(),
                    r.kind == service::RequestKind::kSessionSolve
                        ? (std::string(sat::ToString(r.status)) + " in ").c_str()
                        : "",
                    (r.kind == service::RequestKind::kSessionSolve
                         ? r.latency_seconds
                         : r.apply_seconds) * 1e6);
      }
    }
    outstanding.clear();
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(trace, line)) {
    ++line_no;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream in(line);
    std::string op;
    if (!(in >> op)) continue;
    auto trace_error = [&](const std::string& message) {
      std::fprintf(stderr, "%s:%zu: %s\n", trace_path.c_str(), line_no,
                   message.c_str());
      return 1;
    };
    if (op == "route") {
      std::string bench;
      int width = -1;
      if (!(in >> bench >> width) || width < 1) {
        return trace_error("route needs '<benchmark> <width>'");
      }
      service::RouteRequest request;
      request.label = bench;
      request.graph = graph_for(bench);
      request.width = width;
      request.encoding = "muldirect";
      request.symmetry = opts.sym == "s1" ? "s1" : opts.sym;
      request.solver = opts.solver;
      for (std::string kv; in >> kv;) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          return trace_error("route option '" + kv + "' is not key=value");
        }
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key == "prio") {
          request.priority = std::atoi(value.c_str());
        } else if (key == "enc") {
          request.encoding = value;
        } else if (key == "sym") {
          request.symmetry = value;
        } else if (key == "solver") {
          request.solver = value;
        } else {
          return trace_error("unknown route option '" + key + "'");
        }
      }
      ++routes;
      outstanding.push_back({svc.Submit(std::move(request)),
                             bench + " W=" + std::to_string(width)});
    } else if (op == "session") {
      std::string client, bench;
      if (!(in >> client >> bench)) {
        return trace_error("session needs '<client> <benchmark>'");
      }
      const std::shared_ptr<const graph::Graph> g = graph_for(bench);
      int max_width = 0;
      if (!(in >> max_width)) max_width = peaks[bench] + 1;
      std::string error;
      if (!svc.OpenSession(client, g, max_width, "muldirect", "none",
                           &error)) {
        return trace_error("session '" + client + "': " + error);
      }
      std::printf("session %s: %s at max width %d\n", client.c_str(),
                  bench.c_str(), max_width);
    } else if (op == "ripup") {
      std::string client;
      graph::VertexId net = -1;
      if (!(in >> client >> net)) {
        return trace_error("ripup needs '<client> <net>'");
      }
      ++session_ops;
      outstanding.push_back({svc.SubmitRipUp(client, net),
                             client + " ripup " + std::to_string(net)});
    } else if (op == "reroute") {
      std::string client;
      graph::VertexId net = -1;
      if (!(in >> client >> net)) {
        return trace_error("reroute needs '<client> <net>'");
      }
      std::vector<graph::VertexId> partners;
      for (graph::VertexId u = 0; in >> u;) partners.push_back(u);
      ++session_ops;
      outstanding.push_back(
          {svc.SubmitReroute(client, net, std::move(partners)),
           client + " reroute " + std::to_string(net)});
    } else if (op == "solve") {
      std::string client;
      if (!(in >> client)) return trace_error("solve needs '<client>'");
      int width = 0;
      in >> width;  // 0: the session solves at its max width
      ++session_ops;
      outstanding.push_back({svc.SubmitSessionSolve(client, width),
                             client + " solve"});
    } else if (op == "wait") {
      settle();
    } else {
      return trace_error("unknown trace op '" + op + "'");
    }
  }
  settle();
  svc.Drain();
  const double elapsed = wall.Seconds();

  const service::ServiceStats stats = svc.stats();
  std::printf("served %zu route(s), %zu session op(s) in %.3fs (%.1f "
              "requests/s), %zu failure(s)\n",
              routes, session_ops, elapsed,
              elapsed > 0 ? (routes + session_ops) / elapsed : 0.0,
              failures);
  if (!route_latency.empty()) {
    std::printf("route latency: p50 %.0fus, p95 %.0fus, p99 %.0fus\n",
                Percentile(route_latency, 0.50) * 1e6,
                Percentile(route_latency, 0.95) * 1e6,
                Percentile(route_latency, 0.99) * 1e6);
  }
  std::printf("verdict cache: %llu/%llu hit(s) (+%llu lock-free summary), "
              "%llu resident; instance cache: %llu/%llu hit(s), %llu "
              "resident\n",
              static_cast<unsigned long long>(stats.verdicts.hits),
              static_cast<unsigned long long>(stats.verdicts.lookups),
              static_cast<unsigned long long>(stats.summary_hits),
              static_cast<unsigned long long>(stats.verdicts.entries),
              static_cast<unsigned long long>(stats.instances.hits),
              static_cast<unsigned long long>(stats.instances.lookups),
              static_cast<unsigned long long>(stats.instances.entries));

  if (opts.selfcheck) {
    const std::vector<analysis::CoherenceSample> samples =
        svc.SampleCoherence(/*max_samples=*/8);
    analysis::AnalysisInput input;
    input.coherence_samples = &samples;
    const analysis::AnalysisReport lint =
        analysis::MakeDefaultRunner().Run(input);
    std::printf("selfcheck: %zu verdict(s) re-solved\n%s", samples.size(),
                analysis::FormatText(lint).c_str());
    if (lint.Count(analysis::Severity::kError) > 0) return 1;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string command = argv[1];
  const CliOptions opts = ParseArgs(argc, argv);
  const TelemetrySession telemetry(opts);
  if (command == "benchmarks") return CmdBenchmarks();
  if (command == "encodings") return CmdEncodings();
  if (command == "prove") return CmdProve(opts);
  if (command == "route") return CmdRoute(opts);
  if (command == "replay") return CmdReplay(opts);
  if (command == "export") return CmdExport(opts);
  if (command == "solve") return CmdSolve(opts);
  if (command == "color") return CmdColor(opts);
  if (command == "route-file") return CmdRouteFile(opts);
  if (command == "serve") return CmdServe(opts);
  Usage();
}
